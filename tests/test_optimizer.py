"""Tests for the DOSA one-loop searcher and start-point generation."""

import pytest

from repro.core.optimizer import (
    DosaSearcher,
    DosaSettings,
    LoopOrderingStrategy,
    SearchTrace,
    generate_start_points,
)
from repro.mapping import mapping_fits_hardware, mapping_is_valid
from repro.workloads import get_network
from repro.workloads.networks import Network
from repro.workloads.layer import conv2d_layer, matmul_layer


def small_network() -> Network:
    return Network(name="tiny", layers=[
        conv2d_layer(64, 64, 28, name="conv", repeats=2),
        matmul_layer(196, 256, 512, name="fc"),
    ])


class TestSettings:
    def test_defaults_match_paper(self):
        settings = DosaSettings()
        assert settings.num_start_points == 7
        assert settings.rejection_threshold == 10.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DosaSettings(num_start_points=0)
        with pytest.raises(ValueError):
            DosaSettings(gd_steps=0)
        with pytest.raises(ValueError):
            DosaSettings(rounding_period=0)

    def test_strategy_coercion(self):
        assert DosaSettings(ordering_strategy="softmax").ordering_strategy \
            is LoopOrderingStrategy.SOFTMAX


class TestStartPoints:
    def test_generates_requested_count(self):
        points = generate_start_points(small_network(), count=3, seed=0)
        assert len(points) == 3
        for point in points:
            assert len(point.mappings) == 2
            assert point.predicted_edp > 0
            for mapping in point.mappings:
                assert mapping_is_valid(mapping)
                assert mapping_fits_hardware(mapping, point.hardware)

    def test_fixed_pe_dim(self):
        points = generate_start_points(small_network(), count=2, seed=0, fixed_pe_dim=16)
        assert all(p.hardware.pe_dim == 16 for p in points)

    def test_rejection_threshold_bounds_spread(self):
        points = generate_start_points(small_network(), count=5, seed=1,
                                       rejection_threshold=10.0)
        best = min(p.predicted_edp for p in points)
        # Rejection resamples candidates worse than 10x the best seen so far;
        # the accepted spread can exceed 10x only through later improvements,
        # so a loose bound of 100x is a safe invariant.
        assert max(p.predicted_edp for p in points) <= 100.0 * best

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            generate_start_points(small_network(), count=0)


class TestSearchTrace:
    def test_best_after(self):
        trace = SearchTrace()
        trace.record(10, 100.0)
        trace.record(20, 50.0)
        trace.record(30, 80.0)  # clamped to the running best (50.0)
        assert trace.best_edp_after(10) == 100.0
        assert trace.best_edp_after(25) == 50.0
        assert trace.best_edp_after(30) == 50.0
        assert trace.final_best == 50.0
        assert trace.total_samples == 30


class TestDosaSearcher:
    @pytest.fixture(scope="class")
    def search_result(self):
        settings = DosaSettings(num_start_points=2, gd_steps=60, rounding_period=30, seed=0)
        return DosaSearcher(small_network(), settings).search()

    def test_result_structure(self, search_result):
        assert search_result.method == "dosa"
        assert search_result.network == "tiny"
        assert search_result.best_edp > 0
        assert len(search_result.best.mappings) == 2
        assert len(search_result.extras["start_points"]) == 2
        assert len(search_result.candidates) >= 2
        assert search_result.trace.total_samples > 0
        assert search_result.wall_time_seconds > 0

    def test_best_mappings_are_valid_and_fit_best_hardware(self, search_result):
        for mapping in search_result.best.mappings:
            assert mapping_is_valid(mapping)
            assert mapping_fits_hardware(mapping, search_result.best.hardware)

    def test_best_is_minimum_of_candidates(self, search_result):
        assert search_result.best_edp == pytest.approx(
            min(c.edp for c in search_result.candidates))

    def test_trace_is_monotone_nonincreasing(self, search_result):
        best_values = [p.best_edp for p in search_result.trace.points]
        assert all(later <= earlier * (1 + 1e-12)
                   for earlier, later in zip(best_values, best_values[1:]))

    def test_search_improves_over_start_points(self):
        settings = DosaSettings(num_start_points=1, gd_steps=300, rounding_period=100,
                                learning_rate=0.05, seed=3)
        result = DosaSearcher(small_network(), settings).search()
        from repro.arch import GemminiSpec
        from repro.timeloop import evaluate_network_mappings

        start = result.extras["start_points"][0]
        start_edp = evaluate_network_mappings(start.mappings, GemminiSpec(start.hardware)).edp
        assert result.best_edp < start_edp

    def test_fixed_pe_dim_respected(self):
        settings = DosaSettings(num_start_points=1, gd_steps=40, rounding_period=20,
                                fixed_pe_dim=16, seed=0)
        result = DosaSearcher(small_network(), settings).search()
        assert result.best.hardware.pe_dim == 16
        for mapping in result.best.mappings:
            assert mapping.spatial_factor(1, "C") <= 16
            assert mapping.spatial_factor(2, "K") <= 16

    def test_softmax_strategy_runs(self):
        settings = DosaSettings(num_start_points=1, gd_steps=20, rounding_period=10,
                                ordering_strategy=LoopOrderingStrategy.SOFTMAX, seed=0)
        result = DosaSearcher(small_network(), settings).search()
        assert result.best_edp > 0

    def test_latency_adjuster_changes_scores(self):
        settings = DosaSettings(num_start_points=1, gd_steps=20, rounding_period=10, seed=0)
        plain = DosaSearcher(small_network(), settings).search()

        def doubling_adjuster(mappings, hardware):
            from repro.arch import GemminiSpec
            from repro.timeloop import evaluate_mapping

            return [2.0 * evaluate_mapping(m, GemminiSpec(hardware), check_validity=False).latency_cycles
                    for m in mappings]

        settings2 = DosaSettings(num_start_points=1, gd_steps=20, rounding_period=10, seed=0)
        adjusted = DosaSearcher(small_network(), settings2,
                                latency_adjuster=doubling_adjuster).search()
        assert adjusted.best_edp == pytest.approx(2.0 * plain.best_edp, rel=0.2)

    def test_latency_adjuster_length_mismatch_raises(self):
        settings = DosaSettings(num_start_points=1, gd_steps=10, rounding_period=5, seed=0)
        searcher = DosaSearcher(small_network(), settings,
                                latency_adjuster=lambda mappings, hw: [1.0])
        with pytest.raises(ValueError):
            searcher.search()

    def test_repeated_layers_scale_objective(self, search_result):
        performance = search_result.best.performance
        # The conv layer repeats twice; total latency must exceed the largest
        # single-layer latency, confirming repetition-aware aggregation.
        assert performance.total_latency > max(
            r.latency_cycles for r in performance.per_layer)
