"""Cross-module integration tests.

These exercise the seams the unit tests do not: agreement between the two
performance models on per-level traffic, the mapping-first hardware
derivation used end to end, the CLI, and a miniature end-to-end search whose
output is re-validated with the reference model.
"""

import numpy as np
import pytest

from repro import (
    DosaSearcher,
    DosaSettings,
    GemminiSpec,
    HardwareConfig,
    cosa_mapping,
    evaluate_mapping,
    evaluate_network_mappings,
    get_network,
)
from repro.cli import main as cli_main
from repro.core.dmodel import DifferentiableHardware, DifferentiableModel, LayerFactors
from repro.mapping import (
    minimal_hardware_for_mapping,
    minimal_hardware_for_mappings,
    random_mapping,
)
from repro.timeloop import analyze_traffic
from repro.workloads import conv2d_layer, matmul_layer
from repro.workloads.networks import Network


class TestModelAgreement:
    """The differentiable and reference models must agree per level, not just in total."""

    @pytest.mark.parametrize("seed", range(5))
    def test_per_level_accesses_match(self, seed):
        config = HardwareConfig(16, 32, 128)
        layer = conv2d_layer(64, 128, 28)
        mapping = random_mapping(layer, seed=seed, max_spatial=16)
        reference = analyze_traffic(mapping)
        factors = LayerFactors.from_mapping(mapping)
        grid = factors.factor_grid()
        accesses = DifferentiableModel.traffic(factors, grid)
        for level in range(4):
            assert float(accesses[level].data) == pytest.approx(
                reference.accesses(level), rel=1e-6)

    def test_macs_match_layer_definition(self):
        layer = matmul_layer(512, 768, 768)
        mapping = cosa_mapping(layer, HardwareConfig(16, 32, 128))
        factors = LayerFactors.from_mapping(mapping)
        macs = DifferentiableModel.total_macs(factors, factors.factor_grid())
        assert float(macs.data) == pytest.approx(layer.macs)

    def test_derived_hardware_matches_constraint_path(self):
        config = HardwareConfig(16, 32, 128)
        layers = [conv2d_layer(64, 64, 56), matmul_layer(512, 768, 768)]
        mappings = [cosa_mapping(layer, config) for layer in layers]
        via_constraints = minimal_hardware_for_mappings(mappings)
        via_dmodel = DifferentiableModel.derive_hardware(
            [LayerFactors.from_mapping(m) for m in mappings]).to_config()
        assert via_dmodel == via_constraints


class TestMappingFirstFlow:
    def test_minimal_hardware_runs_cheaper_than_oversized(self):
        layer = conv2d_layer(64, 64, 28)
        mapping = cosa_mapping(layer, HardwareConfig(16, 32, 128))
        minimal = minimal_hardware_for_mapping(mapping)
        oversized = HardwareConfig(minimal.pe_dim,
                                   minimal.accumulator_kb * 4,
                                   minimal.scratchpad_kb * 4)
        minimal_energy = evaluate_mapping(mapping, GemminiSpec(minimal)).energy
        oversized_energy = evaluate_mapping(mapping, GemminiSpec(oversized)).energy
        # Larger SRAMs cost more energy per access (Table 2), so the minimal
        # configuration is never worse for the same mapping.
        assert minimal_energy <= oversized_energy

    def test_search_candidates_are_reference_consistent(self):
        network = Network(name="mini", layers=[conv2d_layer(64, 64, 28),
                                               matmul_layer(64, 256, 512)])
        settings = DosaSettings(num_start_points=1, gd_steps=40, rounding_period=20, seed=1)
        result = DosaSearcher(network, settings).search()
        # Re-evaluating the winning design from scratch reproduces its EDP.
        recomputed = evaluate_network_mappings(result.best.mappings,
                                               GemminiSpec(result.best.hardware))
        assert recomputed.edp == pytest.approx(result.best_edp, rel=1e-9)

    def test_whole_network_objective_differs_from_per_layer(self):
        # Equation 14 multiplies summed energy by summed latency, which is not
        # the sum of per-layer EDPs — the co-search optimizes the former.
        network = get_network("bert")
        config = HardwareConfig(16, 32, 128)
        mappings = [cosa_mapping(layer, config) for layer in network.layers]
        performance = evaluate_network_mappings(mappings, GemminiSpec(config))
        per_layer_edp_sum = sum(
            r.edp * m.layer.repeats for r, m in zip(performance.per_layer, mappings))
        assert performance.edp != pytest.approx(per_layer_edp_sum, rel=1e-3)


class TestCli:
    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        captured = capsys.readouterr().out
        assert "fig4" in captured and "fig12" in captured

    def test_fig4_small_scale(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OUTPUT_DIR", str(tmp_path))
        assert cli_main(["fig4", "--scale", "small"]) == 0
        captured = capsys.readouterr().out
        assert "fig4_model_correlation" in captured
        assert (tmp_path / "fig4_model_correlation.csv").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])
