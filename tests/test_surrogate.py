"""Tests for the RTL simulator, dataset generation and learned latency models."""

import numpy as np
import pytest

from repro.arch import GemminiSpec, HardwareConfig
from repro.mapping import cosa_mapping, random_mapping
from repro.surrogate import (
    AnalyticalLatencyModel,
    CombinedLatencyModel,
    DnnOnlyLatencyModel,
    FEATURE_SIZE,
    LatencyPredictorDNN,
    RtlSimSettings,
    RtlSimulator,
    TrainingSettings,
    encode_features,
    generate_dataset,
    train_test_split,
)
from repro.surrogate.combined import evaluate_model_accuracy, mean_absolute_percentage_error
from repro.timeloop import evaluate_mapping
from repro.workloads import conv2d_layer, get_network
from repro.workloads.networks import Network

HARDWARE = HardwareConfig(16, 32, 128)


def small_training_networks() -> list[Network]:
    return [Network(name="mini", layers=get_network("alexnet").layers[:4])]


class TestRtlSimulator:
    def test_rtl_latency_exceeds_analytical(self):
        simulator = RtlSimulator()
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HARDWARE)
        analytical = evaluate_mapping(mapping, GemminiSpec(HARDWARE)).latency_cycles
        rtl = simulator.latency(mapping, HARDWARE)
        # Overheads are additive and jitter is bounded to +/-8%, so the RTL
        # latency cannot fall far below the analytical roofline.
        assert rtl > analytical * 0.9
        assert rtl < analytical * 10.0

    def test_deterministic(self):
        simulator = RtlSimulator()
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HARDWARE)
        assert simulator.latency(mapping, HARDWARE) == simulator.latency(mapping, HARDWARE)

    def test_depends_on_mapping(self):
        simulator = RtlSimulator()
        layer = conv2d_layer(64, 64, 28)
        a = simulator.latency(cosa_mapping(layer, HARDWARE), HARDWARE)
        b = simulator.latency(random_mapping(layer, seed=3, max_spatial=16), HARDWARE)
        assert a != b

    def test_ratio_definition(self):
        simulator = RtlSimulator()
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HARDWARE)
        analytical = evaluate_mapping(mapping, GemminiSpec(HARDWARE)).latency_cycles
        assert simulator.latency_ratio(mapping, HARDWARE) == pytest.approx(
            simulator.latency(mapping, HARDWARE) / analytical)

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            RtlSimSettings(jitter_amplitude=1.5)
        with pytest.raises(ValueError):
            RtlSimSettings(dram_burst_words=0)

    def test_low_utilization_penalized(self):
        layer = conv2d_layer(64, 64, 28)
        simulator = RtlSimulator()
        parallel = cosa_mapping(layer, HARDWARE)
        serial = cosa_mapping(layer, HardwareConfig(1, 32, 128))
        ratio_parallel = simulator.latency_ratio(parallel, HARDWARE)
        ratio_serial = simulator.latency_ratio(serial, HARDWARE)
        assert ratio_serial > ratio_parallel


class TestFeaturesAndDataset:
    def test_feature_size(self):
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HARDWARE)
        assert encode_features(mapping, HARDWARE).shape == (FEATURE_SIZE,)

    def test_features_distinguish_mappings(self):
        layer = conv2d_layer(64, 64, 28)
        a = encode_features(cosa_mapping(layer, HARDWARE), HARDWARE)
        b = encode_features(random_mapping(layer, seed=1, max_spatial=16), HARDWARE)
        assert not np.allclose(a, b)

    def test_generate_dataset_counts(self):
        dataset = generate_dataset(small_training_networks(), HARDWARE,
                                   samples_per_layer=3, seed=0)
        assert len(dataset) == 4 * 3
        for sample in dataset:
            assert sample.analytical_latency > 0
            assert sample.rtl_latency > 0
            assert np.isfinite(sample.log_ratio)

    def test_train_test_split(self):
        dataset = generate_dataset(small_training_networks(), HARDWARE,
                                   samples_per_layer=3, seed=0)
        train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(dataset)
        assert len(test) == round(len(dataset) * 0.25)

    def test_split_validation(self):
        dataset = generate_dataset(small_training_networks(), HARDWARE,
                                   samples_per_layer=1, seed=0)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.5)


class TestLatencyPredictors:
    @pytest.fixture(scope="class")
    def dataset(self):
        networks = [Network(name="mini", layers=get_network("alexnet").layers)]
        return generate_dataset(networks, HARDWARE, samples_per_layer=12, seed=0)

    def test_parameter_count_near_paper(self):
        predictor = LatencyPredictorDNN()
        # Paper: 7 hidden layers, 5737 parameters; our encoding lands nearby.
        assert 2000 < predictor.num_parameters < 9000
        assert len(predictor.network.layers) == 8

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            LatencyPredictorDNN(mode="hybrid")

    def test_predict_before_train_raises(self):
        predictor = LatencyPredictorDNN()
        with pytest.raises(RuntimeError):
            predictor.predict_latency(np.zeros(FEATURE_SIZE), 1.0)

    def test_training_reduces_loss(self, dataset):
        train, _ = train_test_split(dataset, seed=0)
        predictor = LatencyPredictorDNN(mode="difference", seed=0)
        losses = predictor.train(train, TrainingSettings(epochs=120, seed=0))
        assert losses[-1] < losses[0]

    def test_combined_model_learns_the_rtl_gap(self, dataset):
        # The analytical model systematically underestimates RTL latency (the
        # simulator only adds overheads); a trained difference model must
        # close most of that gap on the data it was fitted to, and not be
        # meaningfully worse than the analytical model on held-out mappings.
        train, test = train_test_split(dataset, seed=0)
        combined = CombinedLatencyModel(seed=0)
        combined.train(train, TrainingSettings(epochs=300, seed=0))
        analytical = AnalyticalLatencyModel()
        assert mean_absolute_percentage_error(combined, train) < \
            0.5 * mean_absolute_percentage_error(analytical, train)
        assert mean_absolute_percentage_error(combined, test) < \
            1.2 * mean_absolute_percentage_error(analytical, test)

    def test_all_models_have_positive_rank_correlation(self, dataset):
        train, test = train_test_split(dataset, seed=0)
        settings = TrainingSettings(epochs=250, seed=0)
        dnn_only = DnnOnlyLatencyModel(seed=0)
        dnn_only.train(train, settings)
        combined = CombinedLatencyModel(seed=0)
        combined.train(train, settings)
        for model in (AnalyticalLatencyModel(), dnn_only, combined):
            assert evaluate_model_accuracy(model, test) > 0.5

    def test_model_names_are_distinct(self):
        names = {AnalyticalLatencyModel.name, DnnOnlyLatencyModel.name,
                 CombinedLatencyModel.name}
        assert len(names) == 3
