"""Fault injection, recovery and multi-tenant hardening of the service.

Covers the :mod:`repro.service.faults` model and injector, then each
recovery path of the hardened daemon end-to-end over HTTP: worker
SIGKILL -> pool respawn -> bit-identical retry, watchdog kills of hung
workers, store I/O retry, cooperative cancellation, tenant quotas +
round-robin fairness, idempotent submits, TTL garbage collection, the
resilient client (backoff, ``Retry-After`` parsing, SSE reconnect with
``Last-Event-ID``), and a focused repro-lint pass over the new code.
"""

import contextlib
import threading
import time

import pytest

import repro
from repro.service import (
    Client,
    FaultDrop,
    FaultPlan,
    FaultRule,
    InjectedFault,
    SearchService,
    ServiceConfig,
    ServiceError,
    create_server,
    write_endpoint_file,
)
from repro.service import faults
from repro.utils.serialization import canonical_outcome_json


@contextlib.contextmanager
def running_service(root, client_retries=0, start=True, **overrides):
    """An in-process daemon + bound HTTP server + discovered client."""
    config = ServiceConfig(root=root, **overrides)
    service = SearchService(config)
    if start:
        service.start()
    server = create_server(service)
    write_endpoint_file(service, server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, Client.from_root(config.root, timeout=120.0,
                                        retries=client_retries)
    finally:
        faults.disarm()  # the daemon armed the plan in this process
        service.drain()
        server.shutdown()
        server.server_close()
        thread.join()


# --------------------------------------------------------------------------- #
# Fault plan model
# --------------------------------------------------------------------------- #
class TestFaultPlanModel:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="worker.step", action="kill", match="seed=0",
                      at=10),
            FaultRule(site="sse.frame", action="drop", probability=0.5,
                      max_fires=3),
            FaultRule(site="worker.cell", action="stall", seconds=0.5),
        ))
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="worker.nap", action="kill")
        with pytest.raises(ValueError, match="not valid at site"):
            FaultRule(site="store.append", action="kill")
        with pytest.raises(ValueError, match="at must be"):
            FaultRule(site="worker.step", action="kill", at=0)
        with pytest.raises(ValueError, match="stall rules need seconds"):
            FaultRule(site="worker.step", action="stall")
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="sse.frame", action="drop", probability=1.5)
        with pytest.raises(ValueError, match="unknown fault rule fields"):
            FaultRule.from_dict({"site": "sse.frame", "action": "drop",
                                 "when": 3})
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_dict({"version": 99, "rules": []})

    def test_hash_fraction_is_deterministic_and_uniform_ish(self):
        draws = [faults._hash_fraction(1, 0, hit) for hit in range(200)]
        assert draws == [faults._hash_fraction(1, 0, hit)
                         for hit in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # Different seeds decorrelate the schedule.
        assert draws != [faults._hash_fraction(2, 0, hit)
                         for hit in range(200)]


# --------------------------------------------------------------------------- #
# Injector semantics
# --------------------------------------------------------------------------- #
class TestFaultInjector:
    def test_fires_on_nth_matching_hit_only(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="store.append", action="error", match="seed=1",
                      at=2),
        ))
        injector = faults.FaultInjector(plan, tmp_path / "ledger")
        injector.fire("store.append", "cell/seed=0")   # no match
        injector.fire("store.append", "cell/seed=1")   # hit 1 of 2
        injector.fire("worker.step", "cell/seed=1")    # wrong site
        with pytest.raises(InjectedFault):
            injector.fire("store.append", "cell/seed=1")
        assert injector.fires() == ["rule0.fire0"]

    def test_ledger_caps_fires_across_injectors(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="sse.frame", action="drop", at=1, max_fires=2),
        ))
        ledger = tmp_path / "ledger"
        # Two injectors over one ledger model a worker that fired, died,
        # and was respawned: the per-process hit counter resets but the
        # global fire budget does not.
        for _ in range(2):
            with pytest.raises(FaultDrop):
                faults.FaultInjector(plan, ledger).fire("sse.frame")
        faults.FaultInjector(plan, ledger).fire("sse.frame")  # budget spent
        assert faults.FaultInjector(plan, ledger).fires() == \
            ["rule0.fire0", "rule0.fire1"]

    def test_module_hooks_are_noops_unless_armed(self, tmp_path):
        assert not faults.armed()
        faults.fire("worker.step", "anything")  # must not raise
        plan = FaultPlan(rules=(
            FaultRule(site="store.append", action="error"),))
        faults.arm(plan, tmp_path / "ledger")
        try:
            assert faults.armed()
            with pytest.raises(InjectedFault):
                faults.fire("store.append")
        finally:
            faults.disarm()
        assert not faults.armed()

    def test_stall_sleeps(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="worker.cell", action="stall", seconds=0.2),))
        injector = faults.FaultInjector(plan, tmp_path / "ledger")
        start = time.monotonic()
        injector.fire("worker.cell", "cell")
        assert time.monotonic() - start >= 0.2


# --------------------------------------------------------------------------- #
# Recovery paths, end to end
# --------------------------------------------------------------------------- #
class TestWorkerRecovery:
    def test_worker_kill_respawns_pool_and_retries_bit_identically(
            self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="worker.step", action="kill", match="seed=6",
                      at=10),
        ))
        with running_service(tmp_path / "svc", n_workers=1,
                             fault_plan=plan) as (service, client):
            job = client.submit_search("bert", strategy="random", seed=6,
                                       budget=40)
            record = client.wait(job["job_id"], timeout=120)
            assert record["state"] == "done"
            assert record["attempts"] == 2
            metrics = client.metrics()
            assert metrics["jobs"]["retried"] == 1
            assert metrics["recovery"]["pool_respawns"] == 1
            served = client.result_bytes(job["job_id"])
        offline = repro.optimize("bert", strategy="random", seed=6,
                                 budget=40)
        assert served == canonical_outcome_json(offline).encode()

    def test_watchdog_kills_hung_worker(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="worker.step", action="stall", at=5,
                      seconds=30.0),
        ))
        with running_service(tmp_path / "svc", n_workers=1,
                             fault_plan=plan, watchdog_seconds=1.0,
                             worker_heartbeat_seconds=0.2) \
                as (service, client):
            job = client.submit_search("bert", strategy="random", seed=3,
                                       budget=40)
            record = client.wait(job["job_id"], timeout=120)
            assert record["state"] == "done"
            metrics = client.metrics()
            assert metrics["recovery"]["workers_killed"] >= 1
            assert metrics["recovery"]["pool_respawns"] >= 1
            served = client.result_bytes(job["job_id"])
        offline = repro.optimize("bert", strategy="random", seed=3,
                                 budget=40)
        assert served == canonical_outcome_json(offline).encode()

    def test_store_append_fault_is_retried(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="store.append", action="error", at=1),
        ))
        with running_service(tmp_path / "svc", n_workers=1,
                             fault_plan=plan) as (service, client):
            job = client.submit_search("bert", strategy="random", seed=1,
                                       budget=30)
            record = client.wait(job["job_id"], timeout=120)
            assert record["state"] == "done"
            assert client.metrics()["jobs"]["retried"] == 1
            served = client.result_bytes(job["job_id"])
        offline = repro.optimize("bert", strategy="random", seed=1,
                                 budget=30)
        assert served == canonical_outcome_json(offline).encode()

    def test_max_attempts_gives_up(self, tmp_path):
        # probability=1.0 fires on *every* append (an ``at`` counter passes
        # its mark only once per process), so each retry fails again.
        plan = FaultPlan(rules=(
            FaultRule(site="store.append", action="error", probability=1.0,
                      max_fires=10),
        ))
        with running_service(tmp_path / "svc", n_workers=1,
                             fault_plan=plan, max_attempts=2) \
                as (service, client):
            job = client.submit_search("bert", strategy="random", seed=2,
                                       budget=20)
            with pytest.raises(ServiceError, match="giving up after 2"):
                client.wait(job["job_id"], timeout=120)
            assert client.job(job["job_id"])["state"] == "failed"


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        with running_service(tmp_path / "svc", start=False) \
                as (service, client):
            job = client.submit_search("bert", strategy="random", budget=10)
            summary = client.cancel(job["job_id"])
            assert summary["state"] == "cancelled"
            assert client.metrics()["jobs"]["cancelled"] == 1
            # Terminal jobs reject a second cancel.
            with pytest.raises(ServiceError) as error:
                client.cancel(job["job_id"])
            assert error.value.status == 409
            # The SSE replay ends with the cancelled frame.
            names = [name for name, _ in client.events(job["job_id"])]
            assert names[-1] == "cancelled"

    def test_cancel_running_job_persists_best_so_far(self, tmp_path):
        with running_service(tmp_path / "svc", n_workers=1,
                             step_period=1) as (service, client):
            job = client.submit_search("bert", strategy="random", seed=9,
                                       budget=6000)
            job_id = job["job_id"]
            for name, _ in client.events(job_id):
                if name == "best":
                    break
            client.cancel(job_id)
            record = client.wait(job_id, timeout=60)
            assert record["state"] == "cancelled"
            store_dir = service.layout.store_dir("default", job_id)
            outcomes = repro.ResultStore(
                store_dir, writer=False, create=False).latest_outcomes()
            assert outcomes and all(payload["interrupted"]
                                    for payload in outcomes.values())
            # A cancelled job serves no result document.
            with pytest.raises(ServiceError) as error:
                client.result(job_id)
            assert error.value.status == 409

    def test_cancel_unknown_job_is_404(self, tmp_path):
        with running_service(tmp_path / "svc", start=False) \
                as (service, client):
            with pytest.raises(ServiceError) as error:
                client.cancel("j-missing")
            assert error.value.status == 404


class TestTenantFairness:
    def test_quota_rejects_with_retry_after(self, tmp_path):
        with running_service(tmp_path / "svc", start=False,
                             tenant_quota=1) as (service, client):
            client.submit_search("bert", strategy="random", budget=10,
                                 tenant="acme")
            with pytest.raises(ServiceError) as error:
                client.submit_search("bert", strategy="random", budget=10,
                                     tenant="acme", seed=1)
            assert error.value.status == 429
            assert error.value.retry_after is not None
            assert "quota" in str(error.value)
            # Quotas are per tenant: another tenant still gets in.
            client.submit_search("bert", strategy="random", budget=10,
                                 tenant="zeno")
            assert client.metrics()["jobs"]["rejected_quota"] == 1
            # Cancelling the active job frees the quota slot.
            client.cancel(client.jobs(tenant="acme")[0]["job_id"])
            client.submit_search("bert", strategy="random", budget=10,
                                 tenant="acme", seed=1)

    def test_round_robin_interleaves_tenants(self, tmp_path):
        # Submit 2 jobs for a backlogged tenant, then 1 for a newcomer,
        # with no dispatchers running; round-robin must serve the newcomer
        # second, not last.
        with running_service(tmp_path / "svc", start=False) \
                as (service, client):
            first = client.submit_search("bert", strategy="random", seed=0,
                                         budget=10, tenant="hog")
            client.submit_search("bert", strategy="random", seed=1,
                                 budget=10, tenant="hog")
            late = client.submit_search("bert", strategy="random", seed=2,
                                        budget=10, tenant="newcomer")
            assert client.healthz()["queue"]["tenants"] == \
                {"hog": 2, "newcomer": 1}
            with service._cond:
                order = [service._next_job_locked().job_id
                         for _ in range(3)]
            assert order[0] == first["job_id"]
            assert order[1] == late["job_id"]
            # Drained queues drop out of the health payload.
            assert client.healthz()["queue"]["tenants"] == {}


class TestIdempotency:
    def test_duplicate_submit_returns_original_job(self, tmp_path):
        with running_service(tmp_path / "svc", start=False) \
                as (service, client):
            first = client.submit_search("bert", strategy="random",
                                         budget=10, idempotency_key="k-1")
            again = client.submit_search("bert", strategy="random",
                                         budget=10, idempotency_key="k-1")
            assert again["job_id"] == first["job_id"]
            # Keys are scoped per tenant.
            other = client.submit_search("bert", strategy="random",
                                         budget=10, idempotency_key="k-1",
                                         tenant="zeno")
            assert other["job_id"] != first["job_id"]
            assert client.metrics()["jobs"]["deduplicated"] == 1
            assert len(client.jobs()) == 2

    def test_bad_idempotency_key_rejected(self, tmp_path):
        with running_service(tmp_path / "svc", start=False) \
                as (service, client):
            with pytest.raises(ServiceError) as error:
                client.submit_search("bert", strategy="random", budget=10,
                                     idempotency_key="bad key!")
            assert error.value.status == 400

    def test_idempotency_map_survives_restart(self, tmp_path):
        root = tmp_path / "svc"
        with running_service(root, start=False) as (service, client):
            first = client.submit_search("bert", strategy="random",
                                         budget=10, idempotency_key="k-9")
        # The restarted daemon rebuilds the (tenant, key) -> job map from
        # the persisted records in recover().
        with running_service(root, n_workers=1) as (service, client):
            again = client.submit_search("bert", strategy="random",
                                         budget=10, idempotency_key="k-9")
            assert again["job_id"] == first["job_id"]


class TestJobGC:
    def test_ttl_expires_terminal_jobs(self, tmp_path):
        # TTL of 1s: long enough for wait() to observe "done" before the
        # sweeper (0.2s period) deletes the record out from under it.
        with running_service(tmp_path / "svc", n_workers=1,
                             job_ttl_seconds=1.0,
                             gc_interval_seconds=0.2) as (service, client):
            job = client.submit_search("bert", strategy="random", budget=10)
            job_id = job["job_id"]
            client.wait(job_id, timeout=120)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    client.job(job_id)
                except ServiceError as error:
                    assert error.status == 404
                    break
                time.sleep(0.1)
            else:
                pytest.fail("done job was never garbage-collected")
            assert client.metrics()["jobs"]["expired"] == 1
            assert not service.layout.job_dir("default", job_id).exists()


# --------------------------------------------------------------------------- #
# Resilient client
# --------------------------------------------------------------------------- #
class TestClientResilience:
    def test_error_from_parses_numeric_retry_after(self):
        error = Client._error_from(429, b'{"error": "slow down"}', "1.5")
        assert error.retry_after == 1.5
        assert error.reason == "slow down"

    def test_error_from_tolerates_http_date_retry_after(self):
        error = Client._error_from(
            503, b"busy", "Wed, 21 Oct 2026 07:28:00 GMT")
        assert error.retry_after is None
        assert error.status == 503

    def test_backoff_delay_grows_capped_and_honors_retry_after(self):
        client = Client("http://127.0.0.1:1", backoff_base=0.25,
                        backoff_cap=4.0)
        for attempt in range(8):
            nominal = min(4.0, 0.25 * 2 ** attempt)
            delay = client._backoff_delay(attempt)
            assert 0.5 * nominal <= delay < 1.5 * nominal
        assert client._backoff_delay(0, retry_after=2.5) >= 2.5
        # A hostile Retry-After cannot park the client for an hour.
        assert client._backoff_delay(0, retry_after=3600.0) <= 30.0

    def test_request_retries_transient_429(self, tmp_path):
        # queue_limit=1 with no dispatchers: the first submit fills the
        # queue.  A retrying client then sees 429s until a slot frees up.
        with running_service(tmp_path / "svc", start=False, queue_limit=1) \
                as (service, client):
            blocker = client.submit_search("bert", strategy="random",
                                           budget=10)
            retrying = Client.from_root(service.config.root, retries=8,
                                        backoff_base=0.05, backoff_cap=0.2)

            def free_slot():
                time.sleep(0.4)
                client.cancel(blocker["job_id"])

            threading.Thread(target=free_slot).start()
            job = retrying.submit_search("bert", strategy="random",
                                         budget=10, seed=1)
            assert job["job_id"] != blocker["job_id"]
            assert client.metrics()["jobs"]["rejected_full"] >= 1

    def test_wait_failure_message_includes_last_event(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="store.append", action="error", at=1,
                      max_fires=10),
        ))
        with running_service(tmp_path / "svc", n_workers=1,
                             fault_plan=plan, max_attempts=1) \
                as (service, client):
            job = client.submit_search("bert", strategy="random", budget=20)
            with pytest.raises(ServiceError) as error:
                client.wait(job["job_id"], timeout=120)
            assert "last event: failed" in str(error.value)


# --------------------------------------------------------------------------- #
# SSE resume (Last-Event-ID)
# --------------------------------------------------------------------------- #
class TestSSEResume:
    def test_replay_resumes_after_given_event_id(self, tmp_path):
        with running_service(tmp_path / "svc", n_workers=1,
                             step_period=10) as (service, client):
            job = client.submit_search("bert", strategy="random", seed=2,
                                       budget=60)
            client.wait(job["job_id"], timeout=120)
            full = list(client._events_stream(job["job_id"], None))
            assert len(full) >= 4 and full[-1][1] == "done"
            # Every frame carries an epoch-qualified id.
            assert all(event_id.startswith(f"{service.events_epoch}.")
                       for event_id, _, _ in full)
            # Resuming after the k-th frame replays exactly the tail.
            resumed = list(client._events_stream(job["job_id"],
                                                 full[1][0]))
            assert resumed == full[2:]
            # Bare integer ids (pre-epoch clients) still work.
            bare = list(client._events_stream(job["job_id"], 1))
            assert bare == full[2:]
            # An id from another daemon epoch replays from the start.
            stale = list(client._events_stream(job["job_id"],
                                               "deadbeef-0.1"))
            assert stale == full

    def test_reconnect_rides_through_forced_mid_stream_drops(self, tmp_path):
        # Two distinct drop rules (an ``at`` counter passes its mark only
        # once per process): the stream is severed on the 3rd frame and
        # again on the 8th hit, which lands inside the resumed stream.
        plan = FaultPlan(seed=3, rules=(
            FaultRule(site="sse.frame", action="drop", at=3),
            FaultRule(site="sse.frame", action="drop", at=8),
        ))
        with running_service(tmp_path / "svc", n_workers=1, step_period=10,
                             fault_plan=plan) as (service, client):
            resilient = Client.from_root(service.config.root, retries=4,
                                         backoff_base=0.05, backoff_cap=0.2)
            job = resilient.submit_search("bert", strategy="random", seed=2,
                                          budget=60)
            names = [name for name, _ in
                     resilient.events(job["job_id"], reconnect=True,
                                      reconnect_grace=60.0)]
            assert names[-1] == "done"
            # Both drops actually happened (one marker per rule)...
            ledger = service.layout.fault_ledger_dir
            assert sorted(p.name for p in ledger.glob("rule*")) == \
                ["rule0.fire0", "rule1.fire0"]
            # ...and the reconnecting client still saw a gap-free history:
            # the replay of the finished stream equals what it collected.
            replay = [name for name, _ in client.events(job["job_id"])]
            assert names == replay


# --------------------------------------------------------------------------- #
# The new code passes its own linter
# --------------------------------------------------------------------------- #
class TestReproLintClean:
    def test_fault_and_recovery_code_is_lint_clean(self):
        from repro.analysis.runner import default_package_dir, run_lint

        result = run_lint(package_dir=default_package_dir(),
                          use_baseline=False)
        watched = ("service/faults.py", "service/daemon.py",
                   "service/client.py", "campaign/scheduler.py",
                   "utils/atomic.py")
        dirty = [f for f in result.findings
                 if any(f.path.endswith(name) for name in watched)]
        assert dirty == [], [f"{f.path}:{f.line} {f.rule}" for f in dirty]
