"""Tests for the extension modules beyond the paper's core scope.

Covers the Timeloop-style mapping report, the first-order area model, the
exhaustive small-layer mapping oracle (and how close the heuristic /
gradient-based mappers get to it), and the additional workloads.
"""

import pytest

from repro.arch import GemminiSpec, HardwareConfig
from repro.arch.area import (
    AreaBreakdown,
    area_delay_product,
    estimate_area,
    fits_area_budget,
)
from repro.mapping import cosa_mapping, mapping_is_valid, random_mapping
from repro.mapping.exhaustive import (
    enumerate_mappings,
    exhaustive_best_mapping,
    mapspace_size,
)
from repro.timeloop import evaluate_mapping
from repro.timeloop.report import mapping_report
from repro.workloads import LayerDims, conv2d_layer, get_network


class TestMappingReport:
    def test_report_matches_evaluation(self):
        hardware = HardwareConfig(16, 32, 128)
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), hardware)
        report = mapping_report(mapping, hardware)
        reference = evaluate_mapping(mapping, GemminiSpec(hardware))
        assert report.latency_cycles == pytest.approx(reference.latency_cycles)
        assert report.energy == pytest.approx(reference.energy)
        assert report.edp == pytest.approx(reference.edp)
        assert report.bound in ("compute", "memory")

    def test_occupancy_within_capacity_for_fitting_mapping(self):
        hardware = HardwareConfig(16, 32, 128)
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), hardware)
        report = mapping_report(mapping, hardware)
        for level in report.levels[:3]:  # on-chip levels
            assert 0.0 <= level.occupancy <= 1.0 + 1e-9

    def test_bandwidth_demand_bounded_by_availability(self):
        # The roofline latency is set by the most bandwidth-constrained level,
        # so no level's average demand can exceed its available bandwidth.
        hardware = HardwareConfig(16, 32, 128)
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), hardware)
        report = mapping_report(mapping, hardware)
        for level in report.levels:
            assert level.bandwidth_demand_words_per_cycle <= \
                level.bandwidth_available_words_per_cycle * (1 + 1e-9)

    def test_text_rendering_contains_all_levels(self):
        hardware = HardwareConfig(16, 32, 128)
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), hardware)
        text = mapping_report(mapping, hardware).to_text()
        for name in ("registers", "accumulator", "scratchpad", "dram"):
            assert name in text
        assert "EDP" in text

    def test_pe_utilization_range(self):
        hardware = HardwareConfig(16, 32, 128)
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), hardware)
        assert 0.0 < mapping_report(mapping, hardware).pe_utilization <= 1.0


class TestAreaModel:
    def test_breakdown_sums_to_total(self):
        breakdown = estimate_area(HardwareConfig(16, 32, 128))
        manual = (breakdown.pe_array_mm2 + breakdown.accumulator_mm2
                  + breakdown.scratchpad_mm2 + breakdown.interconnect_mm2
                  + breakdown.dram_interface_mm2)
        assert breakdown.total_mm2 == pytest.approx(manual)

    def test_area_monotone_in_every_parameter(self):
        base = estimate_area(HardwareConfig(16, 32, 128)).total_mm2
        assert estimate_area(HardwareConfig(32, 32, 128)).total_mm2 > base
        assert estimate_area(HardwareConfig(16, 64, 128)).total_mm2 > base
        assert estimate_area(HardwareConfig(16, 32, 256)).total_mm2 > base

    def test_large_array_is_pe_dominated(self):
        assert estimate_area(HardwareConfig(128, 32, 128)).dominant_component() == "pe_array"

    def test_area_delay_product(self):
        config = HardwareConfig(16, 32, 128)
        assert area_delay_product(config, 1000.0) == pytest.approx(
            estimate_area(config).total_mm2 * 1000.0)
        with pytest.raises(ValueError):
            area_delay_product(config, 0.0)

    def test_fits_area_budget(self):
        config = HardwareConfig(16, 32, 128)
        total = estimate_area(config).total_mm2
        assert fits_area_budget(config, total * 1.01)
        assert not fits_area_budget(config, total * 0.99)
        with pytest.raises(ValueError):
            fits_area_budget(config, 0.0)

    def test_breakdown_is_dataclass_with_positive_entries(self):
        breakdown = estimate_area(HardwareConfig(4, 8, 16))
        assert isinstance(breakdown, AreaBreakdown)
        assert all(value > 0 for value in (
            breakdown.pe_array_mm2, breakdown.accumulator_mm2, breakdown.scratchpad_mm2,
            breakdown.interconnect_mm2, breakdown.dram_interface_mm2))


class TestExhaustiveOracle:
    TINY = LayerDims(R=1, S=1, P=4, Q=2, C=8, K=4, N=1, name="tiny")
    HARDWARE = HardwareConfig(4, 8, 16)

    @pytest.fixture(scope="class")
    def oracle(self):
        return exhaustive_best_mapping(self.TINY, self.HARDWARE)

    def test_mapspace_size_matches_enumeration(self):
        size = mapspace_size(self.TINY, orderings_per_level=3)
        enumerated = sum(1 for _ in enumerate_mappings(self.TINY, max_spatial=128))
        assert enumerated == size

    def test_enumerated_mappings_are_valid(self):
        sampled = 0
        for index, mapping in enumerate(enumerate_mappings(self.TINY, max_spatial=4)):
            if index % 97 == 0:  # spot-check a spread of the enumeration
                assert mapping_is_valid(mapping)
                sampled += 1
        assert sampled > 10

    def test_oracle_beats_or_matches_heuristics(self, oracle):
        spec = GemminiSpec(self.HARDWARE)
        cosa_edp = evaluate_mapping(cosa_mapping(self.TINY, self.HARDWARE), spec).edp
        random_edp = evaluate_mapping(
            random_mapping(self.TINY, seed=0, max_spatial=self.HARDWARE.pe_dim), spec).edp
        assert oracle.best_edp <= cosa_edp * (1 + 1e-9)
        assert oracle.best_edp <= random_edp * (1 + 1e-9)
        assert oracle.evaluated > 0

    def test_cosa_is_near_optimal_on_tiny_layer(self, oracle):
        # The heuristic mapper should land within an order of magnitude of the
        # true optimum on a problem this small.
        spec = GemminiSpec(self.HARDWARE)
        cosa_edp = evaluate_mapping(cosa_mapping(self.TINY, self.HARDWARE), spec).edp
        assert cosa_edp <= 10.0 * oracle.best_edp

    def test_refuses_huge_mapspaces(self):
        big = conv2d_layer(64, 64, 56)
        with pytest.raises(ValueError):
            exhaustive_best_mapping(big, HardwareConfig(16, 32, 128), max_candidates=1000)


class TestAdditionalWorkloads:
    def test_mobilenet_builds_with_depthwise_layers(self):
        network = get_network("mobilenet_v2")
        assert network.total_macs > 1e8
        depthwise = [layer for layer in network.layers if layer.C == 1 and layer.R == 3]
        assert depthwise and all(layer.repeats > 1 for layer in depthwise)

    def test_gpt2_decoder_builds(self):
        network = get_network("gpt2_decoder")
        assert all(layer.is_matmul for layer in network.layers)
        assert network.total_macs > 1e10

    def test_extra_networks_not_in_paper_workload_sets(self):
        from repro.workloads.networks import TARGET_WORKLOAD_NAMES, TRAINING_WORKLOAD_NAMES

        assert "mobilenet_v2" not in TARGET_WORKLOAD_NAMES + TRAINING_WORKLOAD_NAMES
        assert "gpt2_decoder" not in TARGET_WORKLOAD_NAMES + TRAINING_WORKLOAD_NAMES

    def test_cosa_maps_additional_workloads(self):
        hardware = HardwareConfig(16, 32, 128)
        for name in ("mobilenet_v2", "gpt2_decoder"):
            for layer in get_network(name).layers[:5]:
                assert mapping_is_valid(cosa_mapping(layer, hardware))
