"""Tests for the functional ops library and gradient correctness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, check_gradients, ops


class TestElementwise:
    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.0, 2.0])
        assert np.allclose(ops.log(ops.exp(x)).data, x.data)

    def test_relu(self):
        x = Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(ops.relu(x).data, [0.0, 0.0, 2.0])

    def test_sigmoid_range(self):
        x = Tensor(np.linspace(-5, 5, 11))
        y = ops.sigmoid(x).data
        assert np.all((y > 0) & (y < 1))

    def test_maximum_minimum(self):
        a = Tensor([1.0, 5.0])
        b = Tensor([3.0, 2.0])
        assert np.allclose(ops.maximum(a, b).data, [3.0, 5.0])
        assert np.allclose(ops.minimum(a, b).data, [1.0, 2.0])

    def test_clamp(self):
        x = Tensor([0.5, 3.0])
        assert np.allclose(ops.clamp_min(x, 1.0).data, [1.0, 3.0])
        assert np.allclose(ops.clamp_max(x, 1.0).data, [0.5, 1.0])

    def test_where(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([10.0, 20.0])
        out = ops.where(np.array([True, False]), a, b)
        assert np.allclose(out.data, [1.0, 20.0])

    def test_hinge_below(self):
        x = Tensor([0.5, 2.0, 0.9])
        assert ops.hinge_below(x, 1.0).item() == pytest.approx(0.5 + 0.1)


class TestReductionsAndCombos:
    def test_total_sum_and_prod(self):
        values = [Tensor(2.0), Tensor(3.0), 4.0]
        assert ops.total_sum(values).item() == pytest.approx(9.0)
        assert ops.total_prod(values).item() == pytest.approx(24.0)

    def test_total_prod_empty_is_one(self):
        assert ops.total_prod([]).item() == pytest.approx(1.0)

    def test_total_sum_empty_raises(self):
        with pytest.raises(ValueError):
            ops.total_sum([])

    def test_mean(self):
        assert ops.mean([Tensor(1.0), Tensor(2.0), Tensor(6.0)]).item() == pytest.approx(3.0)

    def test_stack_shapes(self):
        out = ops.stack([Tensor(1.0), Tensor(2.0), Tensor(3.0)])
        assert out.shape == (3,)
        assert np.allclose(out.data, [1, 2, 3])

    def test_concat(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0])
        assert np.allclose(ops.concat([a, b]).data, [1, 2, 3])

    def test_softmax_sums_to_one(self):
        x = Tensor([1.0, 2.0, 3.0])
        assert ops.softmax(x).data.sum() == pytest.approx(1.0)

    def test_softmax_is_shift_invariant(self):
        x = Tensor([1.0, 2.0, 3.0])
        y = Tensor([1001.0, 1002.0, 1003.0])
        assert np.allclose(ops.softmax(x).data, ops.softmax(y).data)

    def test_smooth_max_approaches_max(self):
        values = [Tensor(1.0), Tensor(5.0), Tensor(2.0)]
        assert ops.smooth_max(values, sharpness=200.0).item() == pytest.approx(5.0, abs=1e-2)

    def test_dot(self):
        assert ops.dot([Tensor(1.0), Tensor(2.0)], [Tensor(3.0), Tensor(4.0)]).item() == pytest.approx(11.0)


class TestGradients:
    def _check(self, build, *shapes, low=0.5, high=2.0):
        rng = np.random.default_rng(0)
        inputs = [Tensor(rng.uniform(low, high, size=s), requires_grad=True) for s in shapes]
        assert check_gradients(build, inputs, rtol=1e-3, atol=1e-5)

    def test_exp_log_grad(self):
        self._check(lambda t: (ops.exp(t[0]) + ops.log(t[0])).sum(), (4,))

    def test_sqrt_grad(self):
        self._check(lambda t: ops.sqrt(t[0]).sum(), (4,))

    def test_sigmoid_tanh_grad(self):
        self._check(lambda t: (ops.sigmoid(t[0]) * ops.tanh(t[0])).sum(), (5,))

    def test_maximum_grad(self):
        self._check(lambda t: ops.maximum(t[0], t[1]).sum(), (4,), (4,))

    def test_softmax_grad(self):
        self._check(lambda t: (ops.softmax(t[0]) * Tensor([1.0, 2.0, 3.0, 4.0])).sum(), (4,))

    def test_stack_grad(self):
        def build(t):
            return (ops.stack([t[0], t[0] * 2.0]) ** 2).sum()

        self._check(build, (3,))

    def test_where_grad(self):
        cond = np.array([True, False, True])

        def build(t):
            return ops.where(cond, t[0] * 2.0, t[1] * 3.0).sum()

        self._check(build, (3,), (3,))

    def test_relu_grad_away_from_kink(self):
        x = Tensor(np.array([0.7, 1.9, 3.0]), requires_grad=True)
        assert check_gradients(lambda t: ops.relu(t[0] - 1.0).sum(), [x])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=6))
    def test_softmax_weighting_grad(self, n):
        rng = np.random.default_rng(n)
        energies = Tensor(rng.uniform(1.0, 4.0, size=n), requires_grad=True)
        latencies = Tensor(rng.uniform(1.0, 4.0, size=n), requires_grad=True)

        def build(t):
            e, l = t
            weights = ops.softmax(1.0 / (e * l))
            return (weights * e).sum() * (weights * l).sum()

        assert check_gradients(build, [energies, latencies], rtol=1e-3, atol=1e-5)
