"""Tape replay, fused reductions, and the fused Adam update path.

The compiled tape must be *exactly* re-tracing: every assertion here is
bitwise (``==`` / ``array_equal``), not tolerance-based, because the DOSA
inner loop relies on replayed steps being indistinguishable from re-traced
ones.
"""

import numpy as np
import pytest

from repro.autodiff import Adam, Tape, TapeError, Tensor, ops


def _make_params():
    p = Tensor(np.array([0.4, 1.2, 2.5]), requires_grad=True, name="p")
    q = Tensor(np.array([[1.0, -0.5], [0.25, 2.0]]), requires_grad=True, name="q")
    return p, q


def _loss_fn(p, q):
    a = ops.exp(p) * 2.0 + ops.relu(p - 1.0)
    b = ops.maximum((q * q).sum(), a.sum())
    c = ops.softmax(p).sum() + ops.fold_max(a) + ops.fold_sum(a)
    return b * 0.5 + c


class TestTapeReplay:
    def test_replay_matches_retrace_bitwise_across_steps(self):
        p, q = _make_params()
        tape = Tape(lambda: _loss_fn(p, q))
        optimizer = Adam([p, q], lr=0.1, fused=True)

        p2 = Tensor(p.data.copy(), requires_grad=True)
        q2 = Tensor(q.data.copy(), requires_grad=True)
        reference_optimizer = Adam([p2, q2], lr=0.1)

        for _ in range(6):
            optimizer.zero_grad()
            loss = tape.forward()
            tape.backward()

            reference_optimizer.zero_grad()
            reference = _loss_fn(p2, q2)
            reference.backward()

            assert float(loss.data) == float(reference.data)
            assert np.array_equal(p.grad, p2.grad)
            assert np.array_equal(q.grad, q2.grad)
            optimizer.step()
            reference_optimizer.step()
            assert np.array_equal(p.data, p2.data)
            assert np.array_equal(q.data, q2.data)

    def test_replay_tracks_mask_flips(self):
        """relu/maximum masks are re-derived, not frozen at trace time."""
        p = Tensor(np.array([2.0]), requires_grad=True)
        tape = Tape(lambda: ops.relu(p - 1.0).sum())
        tape.forward()
        tape.backward()
        assert p.grad[0] == 1.0
        p.data = np.array([0.5])  # flips the relu mask
        p.zero_grad()
        assert float(tape.forward().data) == 0.0
        tape.backward()
        assert p.grad[0] == 0.0

    def test_invalidate_retraces(self):
        p, _ = _make_params()
        structure = [ops.fold_sum(p)]
        tape = Tape(lambda: structure[0])
        assert float(tape.forward().data) == float(np.cumsum(p.data)[-1])
        assert tape.recorded and tape.num_nodes > 0
        structure[0] = ops.fold_max(p)  # new graph structure
        tape.invalidate()
        assert not tape.recorded
        assert float(tape.forward().data) == p.data.max()

    def test_trace_errors(self):
        p, _ = _make_params()
        with pytest.raises(TapeError):
            Tape(lambda: p * 2.0).forward()  # non-scalar loss
        with pytest.raises(TapeError):
            Tape(lambda: Tensor(1.0)).forward()  # no grad path
        with pytest.raises(TapeError):
            Tape(lambda: (p * 2.0).sum()).backward()  # backward before forward


class TestFoldReductions:
    def test_fold_sum_matches_total_sum_chain(self):
        values = np.array([1e16, 1.0, -1e16, 3.0, 7.5])
        x = Tensor(values, requires_grad=True)
        chained = ops.total_sum([x[i] for i in range(len(values))])
        folded = ops.fold_sum(x)
        assert float(folded.data) == float(chained.data)
        folded.backward()
        assert np.array_equal(x.grad, np.ones_like(values))

    def test_fold_max_matches_chained_maximum_with_ties(self):
        values = np.array([2.0, 5.0, 5.0, 3.0, 5.0, 1.0])
        x = Tensor(values, requires_grad=True)
        ops.fold_max(x).backward()
        y = Tensor(values.copy(), requires_grad=True)
        chained = y[0]
        for i in range(1, len(values)):
            chained = ops.maximum(chained, y[i])
        chained.backward()
        assert np.array_equal(x.grad, y.grad)

    def test_fold_max_single_element(self):
        x = Tensor(np.array([4.0]), requires_grad=True)
        out = ops.fold_max(x)
        out.backward()
        assert float(out.data) == 4.0 and x.grad[0] == 1.0

    def test_reload_product_matches_gated_chain(self):
        rng = np.random.default_rng(0)
        walk_values = rng.uniform(0.5, 6.0, size=(4, 9))
        relevant = rng.random((4, 9)) > 0.5
        x = Tensor(walk_values, requires_grad=True)
        out = ops.reload_product(x, relevant)
        out.backward(np.ones(4))

        for row in range(4):
            y = Tensor(walk_values[row].copy(), requires_grad=True)
            terms = []
            seen_relevant = False
            for position in range(walk_values.shape[1]):
                if walk_values[row, position] <= 1.0 + 1e-9:
                    continue
                if not seen_relevant and not relevant[row, position]:
                    continue
                terms.append(y[position])
                if relevant[row, position]:
                    seen_relevant = True
            chained = ops.total_prod(terms)
            assert float(out.data[row]) == float(chained.data)
            chained.backward()
            assert np.allclose(x.grad[row], y.grad, rtol=1e-12, atol=0.0)


class TestFusedAdam:
    def test_fused_matches_default_bitwise(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(5, 3))
        a = Tensor(data.copy(), requires_grad=True)
        b = Tensor(data.copy(), requires_grad=True)
        fused = Adam([a], lr=0.07, fused=True)
        default = Adam([b], lr=0.07, fused=False)
        for step in range(5):
            grad = rng.normal(size=data.shape)
            a.grad = grad.copy()
            b.grad = grad.copy()
            fused.step()
            default.step()
            assert np.array_equal(a.data, b.data), step

    def test_fused_updates_in_place(self):
        a = Tensor(np.ones(3), requires_grad=True)
        buffer = a.data
        a.grad = np.ones(3)
        Adam([a], lr=0.1, fused=True).step()
        assert a.data is buffer  # mutated, not replaced

    def test_zero_grad_drops_to_none_and_backward_initializes(self):
        a = Tensor(np.ones(3), requires_grad=True)
        optimizer = Adam([a], lr=0.1)
        (a * 3.0).sum().backward()
        assert a.grad is not None
        optimizer.zero_grad()
        assert a.grad is None  # no zero array is allocated
        (a * 2.0).sum().backward()
        assert np.array_equal(a.grad, np.full(3, 2.0))
        optimizer.step()  # parameters with fresh grads step normally

    def test_grads_are_owned_writable_and_unaliased(self):
        """Initialized grads stay safe for in-place consumers (e.g. clipping)."""
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).backward(np.ones(2))
        assert a.grad is not b.grad
        a.grad *= 2.0  # must not touch b.grad nor raise on a read-only view
        assert np.array_equal(b.grad, np.ones(2))
        x = Tensor(np.ones(4), requires_grad=True)
        x.sum().backward()
        x.grad += 1.0  # broadcast-view contributions must be materialized
        assert np.array_equal(x.grad, np.full(4, 2.0))
