"""Tests for the architecture package: Table-2 cost model, configs, baselines."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.arch import (
    BYPASS_MATRIX,
    DRAM_ENERGY_PER_ACCESS,
    EYERISS,
    GEMMINI_DEFAULT,
    GEMMINI_DEFAULT_BASELINE,
    NVDLA_LARGE,
    NVDLA_SMALL,
    HardwareBounds,
    HardwareConfig,
    GemminiSpec,
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_REGISTERS,
    LEVEL_SCRATCHPAD,
    PE_ENERGY_PER_MAC,
    REGISTER_ENERGY_PER_ACCESS,
    accumulator_energy_per_access,
    baseline_accelerators,
    level_bandwidth,
    merge_hardware_configs,
    minimal_hardware_for_requirements,
    random_hardware_config,
    scratchpad_energy_per_access,
)


class TestTable2EnergyModel:
    def test_constants(self):
        assert PE_ENERGY_PER_MAC == pytest.approx(0.561)
        assert REGISTER_ENERGY_PER_ACCESS == pytest.approx(0.487)
        assert DRAM_ENERGY_PER_ACCESS == pytest.approx(100.0)

    def test_accumulator_epa_formula(self):
        # 1.94 + 0.1005 * C1 / sqrt(C_PE) with C1 = 32 KB, 256 PEs.
        assert accumulator_energy_per_access(32, 256) == pytest.approx(1.94 + 0.1005 * 2.0)

    def test_scratchpad_epa_formula(self):
        assert scratchpad_energy_per_access(128) == pytest.approx(0.49 + 0.025 * 128)

    def test_sram_epa_grows_with_capacity(self):
        assert scratchpad_energy_per_access(256) > scratchpad_energy_per_access(64)
        assert accumulator_energy_per_access(64, 256) > accumulator_energy_per_access(16, 256)

    def test_epa_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            scratchpad_energy_per_access(-1)

    def test_bandwidths(self):
        assert level_bandwidth(LEVEL_REGISTERS, 256) == pytest.approx(512)
        assert level_bandwidth(LEVEL_ACCUMULATOR, 256) == pytest.approx(32)
        assert level_bandwidth(LEVEL_SCRATCHPAD, 256) == pytest.approx(32)
        assert level_bandwidth(LEVEL_DRAM, 256) == pytest.approx(8)

    def test_bypass_matrix_matches_table4(self):
        assert BYPASS_MATRIX[LEVEL_REGISTERS] == {"W"}
        assert BYPASS_MATRIX[LEVEL_ACCUMULATOR] == {"O"}
        assert BYPASS_MATRIX[LEVEL_SCRATCHPAD] == {"W", "I"}
        assert BYPASS_MATRIX[LEVEL_DRAM] == {"W", "I", "O"}


class TestHardwareConfig:
    def test_word_capacities(self):
        config = HardwareConfig(pe_dim=16, accumulator_kb=32, scratchpad_kb=128)
        assert config.num_pes == 256
        assert config.accumulator_words == 32 * 1024 // 4
        assert config.scratchpad_words == 128 * 1024
        assert config.register_words == 256

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            HardwareConfig(pe_dim=0, accumulator_kb=1, scratchpad_kb=1)

    def test_describe_mentions_sizes(self):
        text = HardwareConfig(8, 16, 64).describe()
        assert "8x8" in text and "16KB" in text and "64KB" in text

    def test_minimal_hardware_rounds_up(self):
        config = minimal_hardware_for_requirements(
            spatial_requirement=13.2,
            accumulator_word_requirement=900,     # 3600 bytes -> 4 KB
            scratchpad_word_requirement=5000,     # 5000 bytes -> 5 KB
        )
        assert config.pe_dim == 14
        assert config.accumulator_kb == 4
        assert config.scratchpad_kb == 5

    def test_minimal_hardware_respects_caps(self):
        bounds = HardwareBounds(max_pe_dim=32, max_accumulator_kb=64, max_scratchpad_kb=64)
        config = minimal_hardware_for_requirements(1000, 1e9, 1e9, bounds=bounds)
        assert config.pe_dim == 32
        assert config.accumulator_kb == 64
        assert config.scratchpad_kb == 64

    def test_merge_is_parameterwise_max(self):
        merged = merge_hardware_configs([
            HardwareConfig(8, 64, 32),
            HardwareConfig(32, 16, 128),
        ])
        assert merged == HardwareConfig(32, 64, 128)

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_hardware_configs([])

    @given(st.integers(0, 10_000))
    def test_random_config_is_valid(self, seed):
        config = random_hardware_config(seed=seed)
        assert 1 <= config.pe_dim <= 128
        assert config.accumulator_kb >= 1
        assert config.scratchpad_kb >= 1


class TestGemminiSpec:
    def test_default_matches_paper(self):
        assert GEMMINI_DEFAULT.config.pe_dim == 16
        assert GEMMINI_DEFAULT.config.accumulator_kb == 32
        assert GEMMINI_DEFAULT.config.scratchpad_kb == 128

    def test_capacities(self):
        spec = GemminiSpec(HardwareConfig(16, 32, 128))
        assert spec.capacity_words(LEVEL_REGISTERS) == 256
        assert spec.capacity_words(LEVEL_ACCUMULATOR) == 8192
        assert spec.capacity_words(LEVEL_SCRATCHPAD) == 131072
        assert math.isinf(spec.capacity_words(LEVEL_DRAM))

    def test_innermost_levels(self):
        spec = GEMMINI_DEFAULT
        assert spec.innermost_level_for("W") == LEVEL_REGISTERS
        assert spec.innermost_level_for("O") == LEVEL_ACCUMULATOR
        assert spec.innermost_level_for("I") == LEVEL_SCRATCHPAD

    def test_next_inner_level(self):
        spec = GEMMINI_DEFAULT
        assert spec.next_inner_level_for("W", LEVEL_DRAM) == LEVEL_SCRATCHPAD
        assert spec.next_inner_level_for("O", LEVEL_DRAM) == LEVEL_ACCUMULATOR
        assert spec.next_inner_level_for("I", LEVEL_SCRATCHPAD) is None

    def test_describe(self):
        assert "scratchpad" in GEMMINI_DEFAULT.describe()

    def test_energy_ordering_register_cheapest_dram_most_expensive(self):
        spec = GEMMINI_DEFAULT
        epas = [spec.energy_per_access(level) for level in spec.levels]
        assert epas[0] < epas[-1]
        assert max(epas) == epas[-1]


class TestBaselines:
    def test_four_baselines(self):
        names = [b.name for b in baseline_accelerators()]
        assert names == ["Eyeriss", "NVDLA Small", "NVDLA Large", "Gemmini Default"]

    def test_nvdla_large_is_biggest_array(self):
        assert NVDLA_LARGE.config.num_pes > NVDLA_SMALL.config.num_pes
        assert NVDLA_LARGE.config.num_pes > EYERISS.config.num_pes

    def test_gemmini_default_baseline_matches_spec(self):
        assert GEMMINI_DEFAULT_BASELINE.config == GEMMINI_DEFAULT.config

    def test_spec_view(self):
        assert EYERISS.spec.config == EYERISS.config
