"""Tests for repro.utils: integer math, statistics, formatting, RNG helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    ceil_div,
    divisors,
    format_si,
    format_table,
    geometric_mean,
    make_rng,
    next_power_of_two,
    prime_factorization,
    round_to_nearest_divisor,
    round_up_to_multiple,
    spearman_rank_correlation,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_rejects_nonpositive_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)


class TestRoundUpToMultiple:
    def test_rounds_up(self):
        assert round_up_to_multiple(5.2, 1) == 6

    def test_exact(self):
        assert round_up_to_multiple(8, 4) == 8

    def test_rejects_bad_multiple(self):
        with pytest.raises(ValueError):
            round_up_to_multiple(5, 0)


class TestNextPowerOfTwo:
    @pytest.mark.parametrize("value,expected", [(1, 1), (2, 2), (3, 4), (17, 32), (0, 1)])
    def test_values(self, value, expected):
        assert next_power_of_two(value) == expected


class TestPrimeFactorization:
    def test_small(self):
        assert prime_factorization(12) == (2, 2, 3)

    def test_prime(self):
        assert prime_factorization(97) == (97,)

    def test_one(self):
        assert prime_factorization(1) == ()

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            prime_factorization(0)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_product_recovers_input(self, n):
        factors = prime_factorization(n)
        assert math.prod(factors) == n
        assert all(prime_factorization(f) == (f,) for f in factors)


class TestDivisors:
    def test_twelve(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_one(self):
        assert divisors(1) == (1,)

    @given(st.integers(min_value=1, max_value=20_000))
    def test_all_divide_and_sorted(self, n):
        divs = divisors(n)
        assert all(n % d == 0 for d in divs)
        assert list(divs) == sorted(set(divs))
        assert divs[0] == 1 and divs[-1] == n


class TestRoundToNearestDivisor:
    def test_exact_hit(self):
        assert round_to_nearest_divisor(4, 12) == 4

    def test_rounds_to_nearest(self):
        assert round_to_nearest_divisor(5, 12) == 4

    def test_respects_max_value(self):
        assert round_to_nearest_divisor(10, 12, max_value=4) == 4

    def test_max_below_all_divisors_gives_one(self):
        assert round_to_nearest_divisor(10, 13, max_value=5) == 1

    def test_max_below_one_falls_back_to_one(self):
        # Even the divisor 1 is over this limit: the documented fallback is
        # still a factor of 1, never an empty candidate list.
        assert round_to_nearest_divisor(10, 12, max_value=0) == 1

    def test_exhausted_remaining_has_only_divisor_one(self):
        # remaining == 1 (the dimension is fully consumed by inner levels).
        assert round_to_nearest_divisor(5.0, 1) == 1

    def test_halfway_tie_rounds_down(self):
        # 9 is exactly halfway between the divisors 6 and 12 of 12; the
        # strict-< scan keeps the first (smaller) candidate.
        assert round_to_nearest_divisor(9.0, 12) == 6

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
           st.integers(min_value=1, max_value=5000))
    def test_result_is_divisor(self, value, n):
        result = round_to_nearest_divisor(value, n)
        assert n % result == 0


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestSpearman:
    def test_perfect_monotonic(self):
        x = [1, 2, 3, 4, 5]
        y = [10, 100, 1000, 10_000, 100_000]
        assert spearman_rank_correlation(x, y) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        x = [1, 2, 3, 4]
        y = [4, 3, 2, 1]
        assert spearman_rank_correlation(x, y) == pytest.approx(-1.0)

    def test_handles_ties(self):
        x = [1, 2, 2, 3]
        y = [1, 2, 2, 3]
        assert spearman_rank_correlation(x, y) == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy.stats import spearmanr

        rng = np.random.default_rng(3)
        x = rng.normal(size=50)
        y = x + rng.normal(scale=0.5, size=50)
        ours = spearman_rank_correlation(x, y)
        theirs = spearmanr(x, y).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1, 2, 3])


class TestFormatting:
    def test_format_si(self):
        assert format_si(1500) == "1.5k"
        assert format_si(2_000_000, unit="B") == "2MB"

    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2.5], ["xx", 3]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_rejects_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestRng:
    def test_seed_reproducible(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)

    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng
