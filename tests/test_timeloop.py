"""Tests for the reference (Timeloop/Accelergy stand-in) analytical model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import GemminiSpec, HardwareConfig
from repro.mapping import Mapping, cosa_mapping, random_mapping
from repro.timeloop import (
    analyze_traffic,
    energy_breakdown,
    evaluate_mapping,
    evaluate_network_mappings,
)
from repro.timeloop.accelergy import DRAM_BLOCK_WORDS
from repro.timeloop.loopnest import reload_factor, tile_words, total_macs
from repro.workloads import LayerDims, conv2d_layer, matmul_layer


def fig3_mapping() -> Mapping:
    layer = LayerDims(R=1, S=1, P=56, Q=56, C=64, K=64, N=1, name="fig3")
    mapping = Mapping(layer=layer)
    mapping.set_spatial(1, "C", 64)
    mapping.set_spatial(2, "K", 64)
    mapping.set_temporal(0, "Q", 14)
    mapping.set_temporal(3, "Q", 4)
    mapping.set_temporal(3, "P", 56)
    return mapping


class TestTrafficAnalysis:
    def test_macs(self):
        assert total_macs(fig3_mapping()) == pytest.approx(56 * 56 * 64 * 64)

    def test_fig3_tile_sizes(self):
        mapping = fig3_mapping()
        assert tile_words(mapping, 0, "W") == 4096
        assert tile_words(mapping, 1, "O") == 896
        assert tile_words(mapping, 2, "W") == 4096
        assert tile_words(mapping, 2, "I") == 896

    def test_fig3_traffic(self):
        traffic = analyze_traffic(fig3_mapping())
        # Weights fit entirely: loaded once into scratchpad and registers.
        assert traffic.writes[2]["W"] == pytest.approx(4096)
        assert traffic.writes[0]["W"] == pytest.approx(4096)
        # Inputs and outputs stream through exactly once.
        assert traffic.writes[2]["I"] == pytest.approx(56 * 56 * 64)
        assert traffic.updates[3]["O"] == pytest.approx(56 * 56 * 64)
        # No partial-sum spills: C is fully spatial.
        assert traffic.reads[3]["O"] == pytest.approx(0.0)
        # Each MAC reads its weight from the local register.
        assert traffic.reads[0]["W"] == pytest.approx(traffic.macs)
        # Input reads from the scratchpad are broadcast across the K columns.
        assert traffic.reads[2]["I"] == pytest.approx(traffic.macs / 64)

    def test_weight_reload_when_reduction_tiled_at_dram(self):
        layer = LayerDims(R=1, S=1, P=8, Q=8, C=32, K=32, N=1)
        mapping = Mapping(layer=layer)
        mapping.set_temporal(3, "P", 8)
        mapping.set_temporal(3, "Q", 8)
        mapping.set_temporal(3, "C", 32)
        mapping.set_temporal(3, "K", 32)
        # Output-stationary DRAM ordering: reduction loop C sits outside the
        # weight-relevant loops, so weights are refetched for every P/Q tile
        # that follows a relevant loop.
        reload_ws = reload_factor(mapping, 2, "W")
        assert reload_ws >= 32 * 32  # at least the C and K trip counts

    def test_partial_sum_spill_traffic(self):
        # Tile the reduction dimension C at DRAM while keeping outputs small:
        # output tiles are then revisited and must be spilled and refilled.
        layer = LayerDims(R=1, S=1, P=4, Q=4, C=64, K=4, N=1)
        mapping = Mapping(layer=layer)
        mapping.set_temporal(3, "C", 64)
        mapping.set_temporal(3, "P", 4)
        mapping.set_temporal(3, "Q", 4)
        mapping.set_temporal(3, "K", 4)
        traffic = analyze_traffic(mapping)
        assert traffic.reads[3]["O"] > 0
        assert traffic.writes[1]["O"] > 0

    def test_spatial_reduction_reduces_accumulator_updates(self):
        layer = LayerDims(R=1, S=1, P=8, Q=8, C=16, K=16, N=1)
        spatial = Mapping(layer=layer)
        spatial.set_spatial(1, "C", 16)
        spatial.set_temporal(3, "P", 8)
        spatial.set_temporal(3, "Q", 8)
        spatial.set_temporal(3, "K", 16)
        temporal = Mapping(layer=layer)
        temporal.set_temporal(3, "C", 16)
        temporal.set_temporal(3, "P", 8)
        temporal.set_temporal(3, "Q", 8)
        temporal.set_temporal(3, "K", 16)
        spatial_updates = analyze_traffic(spatial).updates[1]["O"]
        temporal_updates = analyze_traffic(temporal).updates[1]["O"]
        assert spatial_updates == pytest.approx(temporal_updates / 16)

    def test_accesses_sum_components(self):
        traffic = analyze_traffic(fig3_mapping())
        level2 = traffic.accesses(2)
        manual = (traffic.reads[2]["W"] + traffic.reads[2]["I"]
                  + traffic.writes[2]["W"] + traffic.writes[2]["I"])
        assert level2 == pytest.approx(manual)


class TestEvaluation:
    def test_fig3_latency_memory_bound(self):
        mapping = fig3_mapping()
        config = HardwareConfig(64, 4, 5)
        result = evaluate_mapping(mapping, GemminiSpec(config))
        assert result.bound == "memory"
        assert result.latency_cycles >= result.compute_latency
        assert result.compute_latency == pytest.approx(mapping.layer.macs / 4096)

    def test_invalid_mapping_rejected(self):
        mapping = fig3_mapping()
        mapping.set_temporal(3, "P", 55)
        with pytest.raises(ValueError):
            evaluate_mapping(mapping, GemminiSpec(HardwareConfig(64, 4, 5)))

    def test_check_validity_can_be_disabled(self):
        mapping = fig3_mapping()
        mapping.set_temporal(3, "P", 55)
        result = evaluate_mapping(mapping, HardwareConfig(64, 4, 5), check_validity=False)
        assert result.latency_cycles > 0

    def test_energy_increases_with_dram_epa_dominance(self):
        mapping = fig3_mapping()
        result = evaluate_mapping(mapping, GemminiSpec(HardwareConfig(64, 4, 5)))
        breakdown = energy_breakdown(analyze_traffic(mapping), GemminiSpec(HardwareConfig(64, 4, 5)))
        assert result.energy == pytest.approx(breakdown.total)
        # DRAM traffic dominates energy for this streaming layer.
        assert breakdown.level_energy[3] > breakdown.level_energy[2]

    def test_dram_block_rounding_penalizes_tiny_layers(self):
        tiny = matmul_layer(2, 3, 2)
        mapping = Mapping(layer=tiny)
        mapping.set_temporal(3, "P", 2)
        mapping.set_temporal(3, "C", 3)
        mapping.set_temporal(3, "K", 2)
        traffic = analyze_traffic(mapping)
        breakdown = energy_breakdown(traffic, GemminiSpec(HardwareConfig(4, 8, 8)))
        raw_dram_words = sum(
            traffic.tensor_traffic(3, t) for t in ("W", "I", "O")
        )
        assert breakdown.level_energy[3] >= raw_dram_words * 100.0
        assert breakdown.level_energy[3] >= DRAM_BLOCK_WORDS * 100.0

    def test_utilization_between_zero_and_one(self):
        result = evaluate_mapping(fig3_mapping(), GemminiSpec(HardwareConfig(64, 4, 5)))
        assert 0.0 < result.utilization <= 1.0

    def test_more_parallelism_lowers_compute_latency(self):
        layer = conv2d_layer(64, 64, 28)
        config = HardwareConfig(32, 64, 256)
        serial = cosa_mapping(layer, HardwareConfig(1, 64, 256))
        parallel = cosa_mapping(layer, config)
        serial_result = evaluate_mapping(serial, GemminiSpec(config))
        parallel_result = evaluate_mapping(parallel, GemminiSpec(config))
        assert parallel_result.compute_latency < serial_result.compute_latency

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5_000))
    def test_random_mappings_produce_finite_positive_results(self, seed):
        layer = conv2d_layer(64, 128, 14)
        mapping = random_mapping(layer, seed=seed, max_spatial=32)
        result = evaluate_mapping(mapping, GemminiSpec(HardwareConfig(32, 64, 256)))
        assert math.isfinite(result.latency_cycles) and result.latency_cycles > 0
        assert math.isfinite(result.energy) and result.energy > 0
        assert result.edp == pytest.approx(result.latency_cycles * result.energy)

    def test_macs_invariant_under_mapping_choice(self):
        layer = conv2d_layer(32, 64, 14)
        config = HardwareConfig(16, 32, 128)
        macs = {evaluate_mapping(random_mapping(layer, seed=s, max_spatial=16),
                                 GemminiSpec(config)).macs for s in range(5)}
        assert all(m == pytest.approx(layer.macs) for m in macs)


class TestNetworkEvaluation:
    def test_repeats_scale_totals(self):
        layer = conv2d_layer(32, 32, 14, repeats=3)
        config = HardwareConfig(16, 32, 128)
        mapping = cosa_mapping(layer, config)
        single = evaluate_mapping(mapping, GemminiSpec(config))
        network = evaluate_network_mappings([mapping], GemminiSpec(config))
        assert network.total_latency == pytest.approx(3 * single.latency_cycles)
        assert network.total_energy == pytest.approx(3 * single.energy)

    def test_edp_is_product_of_sums(self):
        config = HardwareConfig(16, 32, 128)
        layers = [conv2d_layer(32, 32, 14), matmul_layer(64, 256, 128)]
        mappings = [cosa_mapping(l, config) for l in layers]
        network = evaluate_network_mappings(mappings, GemminiSpec(config))
        assert network.edp == pytest.approx(network.total_latency * network.total_energy)

    def test_empty_mappings_rejected(self):
        with pytest.raises(ValueError):
            evaluate_network_mappings([], GemminiSpec(HardwareConfig(16, 32, 128)))
