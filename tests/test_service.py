"""Search-as-a-service: daemon, HTTP API, SSE streams, drain and resume."""

import contextlib
import json
import threading

import pytest

import repro
from repro.campaign import CampaignReport, CampaignSpec, StrategyVariant, run_campaign
from repro.service import (
    Client,
    SearchService,
    ServiceConfig,
    ServiceError,
    create_server,
    write_endpoint_file,
)
from repro.service.jobs import (
    RequestError,
    build_campaign_spec,
    normalize_request,
    validate_tenant,
)
from repro.utils.serialization import canonical_outcome_json


@contextlib.contextmanager
def running_service(root, start=True, **overrides):
    """An in-process daemon + bound HTTP server + discovered client."""
    config = ServiceConfig(root=root, **overrides)
    service = SearchService(config)
    if start:
        service.start()
    server = create_server(service)
    write_endpoint_file(service, server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        # retries=0: unit tests assert raw rejection semantics (429/503);
        # the client's transparent retry layer is exercised on its own in
        # tests/test_service_faults.py and benchmarks/bench_chaos.py.
        yield service, Client.from_root(config.root, timeout=120.0,
                                        retries=0)
    finally:
        service.drain()
        server.shutdown()
        server.server_close()
        thread.join()


def tiny_campaign_spec():
    return CampaignSpec(
        name="svc-grid",
        workloads=("bert",),
        strategies=(
            StrategyVariant("random", settings={"num_hardware_designs": 2,
                                                "mappings_per_layer": 5}),
        ),
        seeds=(0, 1),
    )


# --------------------------------------------------------------------------- #
# Job model
# --------------------------------------------------------------------------- #
class TestJobModel:
    def test_tenant_validation(self):
        assert validate_tenant(None) == "default"
        assert validate_tenant("team-a.prod") == "team-a.prod"
        for bad in ("", "../escape", "a/b", "x" * 65, 7):
            with pytest.raises(RequestError):
                validate_tenant(bad)

    def test_normalize_search_request(self):
        tenant, kind, request = normalize_request(
            {"network": "bert", "strategy": "random", "seed": 3,
             "budget": 40, "tenant": "alice"})
        assert (tenant, kind) == ("alice", "search")
        assert request["budget"] == {"max_samples": 40, "max_seconds": None}
        # The normalized request rebuilds the identical spec every time
        # (what restart-resume relies on).
        assert build_campaign_spec("j-1", kind, request).to_dict() == \
            build_campaign_spec("j-1", kind, request).to_dict()

    def test_rejects_bad_requests(self):
        for bad in (
            None,
            {"kind": "teapot"},
            {"network": "not-a-network"},
            {"network": "bert", "strategy": "not-a-strategy"},
            {"network": "bert", "budget": {"max_sample": 5}},
            {"network": "bert", "unexpected": 1},
            {"kind": "campaign"},
            {"kind": "campaign", "spec": {"name": "x"}},
        ):
            with pytest.raises(RequestError):
                normalize_request(bad)


# --------------------------------------------------------------------------- #
# End-to-end over HTTP
# --------------------------------------------------------------------------- #
class TestServiceEndToEnd:
    def test_search_job_matches_offline_byte_for_byte(self, tmp_path):
        with running_service(tmp_path / "svc", n_workers=2) as (service, client):
            assert client.healthz()["status"] == "ok"
            job = client.submit_search("bert", strategy="random", seed=5,
                                       budget=40, tenant="alice")
            record = client.wait(job["job_id"], timeout=120)
            assert record["state"] == "done"
            assert record["result"]["cells"] == 1
            served = client.result_bytes(job["job_id"])

            metrics = client.metrics()
            assert metrics["jobs"]["done"] == 1
            assert metrics["latency_seconds"]["p50"] is not None

        offline = repro.optimize("bert", strategy="random", seed=5, budget=40)
        assert served == canonical_outcome_json(offline).encode()

    def test_campaign_job_and_tenant_listing(self, tmp_path):
        spec = tiny_campaign_spec()
        with running_service(tmp_path / "svc", n_workers=2) as (service, client):
            job = client.submit_campaign(spec, tenant="team-a")
            client.submit_search("bert", strategy="random", seed=0,
                                 budget=20, tenant="team-b")
            client.wait(job["job_id"], timeout=180)
            document = client.result(job["job_id"])
            assert document["kind"] == "campaign"
            assert len(document["jobs"]) == spec.grid_size

            team_a = client.jobs(tenant="team-a")
            assert [j["job_id"] for j in team_a] == [job["job_id"]]
            assert len(client.jobs()) == 2

        # The served report is byte-identical to an offline campaign run of
        # the same spec (deterministic report, seeded jobs).
        offline_dir = tmp_path / "offline"
        run_campaign(spec, directory=offline_dir)
        offline_report = CampaignReport.from_store(
            repro.ResultStore(offline_dir)).to_text()
        assert document["report"] == offline_report

    def test_sse_stream_reaches_done(self, tmp_path):
        with running_service(tmp_path / "svc", n_workers=1,
                             step_period=10) as (service, client):
            job = client.submit_search("bert", strategy="random", seed=2,
                                       budget=60)
            names = [name for name, _ in client.events(job["job_id"])]
            assert names[0] == "queued"
            assert "running" in names and "cell_started" in names
            assert "best" in names
            assert names[-1] == "done"

            # Replaying after completion (e.g. a reconnecting client) still
            # ends with a terminal frame.
            replay = [name for name, _ in client.events(job["job_id"])]
            assert replay[-1] == "done"

    def test_http_error_paths(self, tmp_path):
        # No dispatchers (start=False): jobs stay queued, which exposes the
        # 409/429 paths deterministically.
        with running_service(tmp_path / "svc", start=False,
                             queue_limit=2) as (service, client):
            with pytest.raises(ServiceError) as error:
                client.submit_search("no-such-network")
            assert error.value.status == 400

            with pytest.raises(ServiceError) as error:
                client.job("j-missing")
            assert error.value.status == 404

            job = client.submit_search("bert", strategy="random", budget=10)
            with pytest.raises(ServiceError) as error:
                client.result(job["job_id"])
            assert error.value.status == 409  # queued, not done

            client.submit_search("bert", strategy="random", budget=10)
            with pytest.raises(ServiceError) as error:
                client.submit_search("bert", strategy="random", budget=10)
            assert error.value.status == 429  # bounded queue: backpressure
            assert error.value.retry_after is not None
            assert client.metrics()["jobs"]["rejected_full"] == 1

            service.drain()  # stop accepting; the server itself stays up
            with pytest.raises(ServiceError) as error:
                client.submit_search("bert", strategy="random", budget=10)
            assert error.value.status == 503
            assert client.healthz()["status"] == "draining"


# --------------------------------------------------------------------------- #
# Drain + restart resume
# --------------------------------------------------------------------------- #
class TestDrainAndResume:
    def test_drain_persists_best_so_far_and_restart_resumes(self, tmp_path):
        root = tmp_path / "svc"
        budget = 6000
        with running_service(root, n_workers=1,
                             step_period=1) as (service, client):
            job = client.submit_search("bert", strategy="random", seed=9,
                                       budget=budget)
            job_id = job["job_id"]
            # Wait until the search is genuinely in flight (first best found),
            # then drain mid-job.
            for name, _ in client.events(job_id):
                if name == "best":
                    break
            service.drain()
            record = client.job(job_id)
            assert record["state"] == "queued"  # persisted for the next daemon
            store_dir = service.layout.store_dir("default", job_id)
            outcomes = repro.ResultStore(
                store_dir, writer=False, create=False).latest_outcomes()
            assert all(payload["interrupted"]
                       for payload in outcomes.values())

        # A fresh daemon over the same root resumes the job to completion.
        with running_service(root, n_workers=1) as (service, client):
            record = client.wait(job_id, timeout=240)
            assert record["state"] == "done"
            assert client.metrics()["jobs"]["resumed"] == 1
            served = client.result_bytes(job_id)

        offline = repro.optimize("bert", strategy="random", seed=9,
                                 budget=budget)
        assert served == canonical_outcome_json(offline).encode()

    def test_restart_without_drain_recovers_queued_jobs(self, tmp_path):
        root = tmp_path / "svc"
        # Simulate a crash: jobs accepted but the daemon never ran them.
        with running_service(root, start=False) as (service, client):
            job = client.submit_search("bert", strategy="random", seed=4,
                                       budget=30)
        with running_service(root, n_workers=1) as (service, client):
            record = client.wait(job["job_id"], timeout=120)
            assert record["state"] == "done"
