"""Property fuzz: the vectorized rounding walk is bit-identical to the oracle.

The batched ``(S, L)`` integer-rounding kernel (`repro.mapping.rounding_walk`)
must reproduce the scalar Section-5.3.2 walk (`round_mapping`) *bit for bit* —
divisor products, spatial caps, DRAM remainders and the EDPs of the resulting
designs.  The corpus is seeded random fractional factor tensors over random
layer shapes (primes, powers of two, composites), random ``max_spatial`` caps
(including fractional ``15.999…`` caps), and S x L batches with duplicated
start rows; well over 1000 mappings per run.

The mutation-regression class then checks the *wiring* of this oracle: if the
kernel's cap mask or remainder carry is perturbed, the same corpus must light
up.  A parity suite that cannot catch a broken kernel is worse than none.
"""

import numpy as np
import pytest

from repro.core.dmodel.factors import MultiStartFactors, NetworkFactors
from repro.mapping import (
    Mapping,
    minimal_hardware_for_mapping,
    round_mapping,
    round_mapping_batch,
)
from repro.mapping import rounding_walk
from repro.mapping.rounding_walk import RoundingTables, round_factor_tensors
from repro.timeloop.model import evaluate_mapping
from repro.utils.math_utils import divisors
from repro.workloads import LayerDims
from repro.workloads.layer import DIMENSIONS

# Primes, powers of two, and awkward composites; sizes stay small enough that
# the scalar oracle side of the fuzz run finishes in seconds.
_DIM_POOL = (1, 2, 3, 4, 5, 7, 8, 12, 13, 16, 17, 28, 31, 32, 49, 64, 96, 101, 128)
_CAP_POOL = (None, 1, 1.0, 2, 3, 4, 7.5, 15.999999, 16, 16.49, 31.5, 128)


def _random_layer(rng: np.random.Generator, index: int) -> LayerDims:
    return LayerDims(**{d: int(rng.choice(_DIM_POOL)) for d in DIMENSIONS},
                     name=f"fuzz{index}")


def _random_fractional_mapping(rng: np.random.Generator,
                               layer: LayerDims) -> Mapping:
    """A mapping with log-uniform fractional factors (0.14 .. ~1100)."""
    mapping = Mapping(layer=layer)
    mapping.temporal = np.exp(rng.uniform(-2.0, 7.0, mapping.temporal.shape))
    mapping.spatial = np.exp(rng.uniform(-2.0, 7.0, mapping.spatial.shape))
    return mapping


def _random_batch(rng: np.random.Generator, seed_tag: int):
    """One random S x L batch (shared layers, sometimes duplicated starts)."""
    num_layers = int(rng.integers(1, 5))
    num_sets = int(rng.integers(1, 6))
    layers = [_random_layer(rng, seed_tag * 10 + l) for l in range(num_layers)]
    sets = [[_random_fractional_mapping(rng, layer) for layer in layers]
            for _ in range(num_sets)]
    if num_sets > 1 and rng.random() < 0.5:
        # Duplicate a start row: identical inputs must round identically.
        sets[-1] = [m.copy() for m in sets[0]]
    cap = rng.choice(np.array(_CAP_POOL, dtype=object))
    cap = None if cap is None else float(cap)
    return sets, cap


def _assert_mapping_bits_equal(reference: Mapping, batched: Mapping) -> None:
    assert np.array_equal(reference.temporal, batched.temporal)
    assert np.array_equal(reference.spatial, batched.spatial)
    assert reference.orderings == batched.orderings


class TestRoundingWalkParity:
    """The kernel against the scalar oracle, over a seeded random corpus."""

    def test_fuzz_bit_identity(self):
        total = 0
        for seed in range(36):
            rng = np.random.default_rng(seed)
            for round_index in range(5):
                sets, cap = _random_batch(rng, seed * 100 + round_index)
                batched = round_mapping_batch(sets, max_spatial=cap)
                for raw_set, rounded_set in zip(sets, batched):
                    for raw, rounded in zip(raw_set, rounded_set):
                        reference = round_mapping(raw, max_spatial=cap)
                        _assert_mapping_bits_equal(reference, rounded)
                        total += 1
                        # Structural invariants, independent of the oracle:
                        # integral divisors, exact per-dimension products,
                        # capped spatial factors.
                        factors = np.concatenate([rounded.temporal,
                                                  rounded.spatial])
                        assert np.array_equal(factors, np.rint(factors))
                        for dim_index, dim in enumerate(DIMENSIONS):
                            product = int(round(
                                rounded.temporal[:, dim_index].prod()
                                * rounded.spatial[:, dim_index].prod()))
                            assert product == raw.layer.dim(dim)
                        if cap is not None:
                            assert rounded.spatial.max() <= int(round(cap))
        assert total >= 1000, f"fuzz corpus shrank to {total} mappings"

    def test_fuzz_edps_exactly_equal(self):
        """The resulting *designs* score identically under the reference model.

        Bitwise-equal factor arrays make this a consequence, but the claim the
        search relies on is about EDPs, so it is asserted directly on a slice
        of the corpus (one batch per seed, minimal hardware per mapping).
        """
        for seed in range(6):
            rng = np.random.default_rng(1000 + seed)
            sets, cap = _random_batch(rng, seed)
            batched = round_mapping_batch(sets, max_spatial=cap)
            for raw_set, rounded_set in zip(sets, batched):
                for raw, rounded in zip(raw_set, rounded_set):
                    reference = round_mapping(raw, max_spatial=cap)
                    hardware = minimal_hardware_for_mapping(reference)
                    reference_edp = evaluate_mapping(reference, hardware).edp
                    batched_edp = evaluate_mapping(rounded, hardware).edp
                    assert reference_edp == batched_edp

    def test_duplicate_start_rows_round_identically(self):
        rng = np.random.default_rng(7)
        layers = [_random_layer(rng, index) for index in range(3)]
        base = [_random_fractional_mapping(rng, layer) for layer in layers]
        sets = [[m.copy() for m in base] for _ in range(4)]
        batched = round_mapping_batch(sets, max_spatial=16)
        for duplicate in batched[1:]:
            for first, other in zip(batched[0], duplicate):
                _assert_mapping_bits_equal(first, other)

    def test_halfway_ties_round_down_like_the_oracle(self):
        """Raw values exactly between two divisors pick the smaller one."""
        layer = LayerDims(R=1, S=1, P=12, Q=16, C=36, K=64, N=1, name="ties")
        mapping = Mapping(layer=layer)
        for dim_index, dim in enumerate(DIMENSIONS):
            divs = divisors(layer.dim(dim))
            if len(divs) >= 2:
                # Exactly halfway between the two largest divisors.
                mapping.temporal[0, dim_index] = (divs[-1] + divs[-2]) / 2.0
        [rounded], = round_mapping_batch([[mapping]]),
        reference = round_mapping(mapping)
        _assert_mapping_bits_equal(reference, rounded[0])
        # P=12: halfway between 6 and 12 is 9 -> the oracle keeps 6.
        assert rounded[0].temporal[0, DIMENSIONS.index("P")] == 6.0

    def test_cap_below_one_raises_like_the_oracle(self):
        layer = LayerDims(R=1, S=1, P=4, Q=4, C=8, K=8, N=1, name="cap")
        mapping = _random_fractional_mapping(np.random.default_rng(0), layer)
        with pytest.raises(ValueError):
            round_mapping(mapping, max_spatial=0.5)
        with pytest.raises(ValueError):
            round_mapping_batch([[mapping]], max_spatial=0.5)
        tables = RoundingTables.for_layers([layer])
        with pytest.raises(ValueError):
            round_factor_tensors(mapping.temporal[None, None],
                                 mapping.spatial[None, None], tables,
                                 max_spatial=0.5)

    def test_factors_routes_match_oracle(self):
        """NetworkFactors / MultiStartFactors wiring reaches the same bits."""
        rng = np.random.default_rng(11)
        layers = [_random_layer(rng, index) for index in range(3)]
        sets = [[_random_fractional_mapping(rng, layer) for layer in layers]
                for _ in range(3)]
        multi = MultiStartFactors.from_mapping_sets(sets)
        for start, rounded_set in enumerate(
                multi.rounded_mapping_sets(max_spatial=16)):
            for reference, rounded in zip(
                    multi.rounded_mappings_of(start, max_spatial=16),
                    rounded_set):
                _assert_mapping_bits_equal(reference, rounded)
        single = NetworkFactors.from_mappings(sets[0])
        for reference, rounded in zip(
                single.rounded_mappings(max_spatial=16, batched=False),
                single.rounded_mappings(max_spatial=16, batched=True)):
            _assert_mapping_bits_equal(reference, rounded)


class TestMutationRegression:
    """Perturbing the kernel must trip the parity corpus (oracle wiring test)."""

    # Layers whose divisor ladders have near-adjacent rungs, with caps that
    # sit on them, so both an off-by-one cap and a dropped carry change
    # decisions somewhere in the corpus.
    def _mismatches(self) -> int:
        mismatches = 0
        for seed in range(4):
            rng = np.random.default_rng(2000 + seed)
            sets, _ = _random_batch(rng, seed)
            for cap in (3, 16):
                batched = round_mapping_batch(sets, max_spatial=cap)
                for raw_set, rounded_set in zip(sets, batched):
                    for raw, rounded in zip(raw_set, rounded_set):
                        reference = round_mapping(raw, max_spatial=cap)
                        if not (np.array_equal(reference.temporal, rounded.temporal)
                                and np.array_equal(reference.spatial, rounded.spatial)):
                            mismatches += 1
        return mismatches

    def test_unmutated_kernel_is_clean(self):
        assert self._mismatches() == 0

    def test_dropped_cap_mask_is_caught(self, monkeypatch):
        monkeypatch.setattr(rounding_walk, "_spatial_limit",
                            lambda remaining_values, cap: remaining_values)
        assert self._mismatches() > 0

    def test_off_by_one_cap_is_caught(self, monkeypatch):
        monkeypatch.setattr(rounding_walk, "_spatial_limit",
                            lambda remaining_values, cap:
                            np.minimum(remaining_values, cap + 1))
        assert self._mismatches() > 0

    def test_stuck_remainder_carry_is_caught(self, monkeypatch):
        monkeypatch.setattr(rounding_walk, "_advance_remaining",
                            lambda table, rows, rem_index, choice: rem_index)
        assert self._mismatches() > 0
