"""Integration tests: every experiment harness runs end-to-end at reduced scale."""

import pytest

from repro.experiments import (
    fig4_correlation,
    fig6_loop_ordering,
    fig7_cosearch,
    fig8_baselines,
    fig9_separation,
    fig10_11_surrogate,
    fig12_rtl,
)
from repro.experiments.common import ExperimentOutput


class TestCommon:
    def test_experiment_output_roundtrip(self, tmp_path):
        output = ExperimentOutput(name="demo", headers=["a", "b"])
        output.add_row(1, 2.5)
        output.add_note("note")
        path = output.save(tmp_path)
        assert path.exists()
        assert (tmp_path / "demo.txt").read_text().startswith("== demo ==")

    def test_row_length_validated(self):
        output = ExperimentOutput(name="demo", headers=["a", "b"])
        with pytest.raises(ValueError):
            output.add_row(1)


class TestFig4:
    def test_small_run_has_low_error(self):
        stats = fig4_correlation.run(num_configs=4, mappings_per_config=8, seed=0)
        assert set(stats) == {"latency", "energy", "edp"}
        assert stats["latency"].mean_absolute_error_pct < 1.0
        assert stats["energy"].mean_absolute_error_pct < 5.0
        assert 0.0 <= stats["edp"].within_one_pct <= 1.0


class TestFig6:
    def test_all_strategies_reported(self):
        results = fig6_loop_ordering.run(workloads=("bert",), num_start_points=1,
                                         gd_steps=20, rounding_period=10, seed=0)
        assert set(results) == {"bert"}
        assert set(results["bert"]) == {"baseline", "iterate", "softmax"}
        assert all(edp > 0 for edp in results["bert"].values())


class TestFig7:
    def test_traces_and_summary(self):
        results = fig7_cosearch.run(
            workloads=("bert",), num_start_points=1, gd_steps=30, rounding_period=15,
            random_hardware_designs=2, random_mappings_per_layer=10,
            bo_training_hardware=2, bo_mappings_per_layer=5, bo_candidates=3, seed=0)
        assert len(results) == 1
        result = results[0]
        assert result.dosa_edp > 0 and result.random_edp > 0 and result.bayesian_edp > 0
        assert result.dosa_trace and result.random_trace
        summary = fig7_cosearch.summarize(results)
        assert summary["geomean_vs_random"] > 0


class TestFig8:
    def test_all_accelerators_present(self):
        results = fig8_baselines.run(workloads=("bert",), mappings_per_layer=5,
                                     num_start_points=1, gd_steps=20,
                                     rounding_period=10, seed=0)
        names = set(results["bert"])
        assert names == {"Eyeriss", "NVDLA Small", "NVDLA Large", "Gemmini Default",
                         "Gemmini DOSA"}


class TestFig9:
    def test_summary_factors_positive(self):
        results = fig9_separation.run(workloads=("bert",), runs_per_workload=1,
                                      gd_steps=30, rounding_period=15,
                                      random_mappings_per_layer=5, seed=0)
        summary = fig9_separation.summarize(results)
        assert all(value > 0 for value in summary.values())


class TestFig10And11:
    def test_accuracies_in_valid_range(self):
        study = fig10_11_surrogate.run(samples_per_layer=2, training_epochs=40,
                                       dosa_workloads=("bert",), dosa_gd_steps=20,
                                       dosa_rounding_period=10, seed=0)
        for table in (study.random_mapping_accuracy, study.dosa_mapping_accuracy):
            assert set(table) == {"analytical", "dnn_only", "analytical_dnn"}
            assert all(-1.0 <= value <= 1.0 for value in table.values())


class TestFig12:
    def test_structure_and_table7(self):
        results = fig12_rtl.run(workloads=("bert",), samples_per_layer=2,
                                training_epochs=30, num_start_points=1,
                                gd_steps=20, rounding_period=10, seed=0)
        summary = fig12_rtl.summarize(results)
        assert set(summary) == {"analytical", "dnn_only", "analytical_dnn"}
        rows = fig12_rtl.table7_rows(results)
        assert rows[0][0] == "Gemmini Default"
        assert len(rows) == 2  # default + one workload
        # PE dimensions were fixed, so only buffer sizes may differ.
        for design in results["designs"]:
            assert design.hardware.pe_dim == 16
