"""Tests for the evaluation engine: cache, batch parity, parallelism, fixes."""

import numpy as np
import pytest

from repro.arch import GemminiSpec, HardwareConfig
from repro.eval import (
    EvaluationCache,
    EvaluationEngine,
    ParallelEvaluator,
    batch_analyze_traffic,
    evaluate_mappings_batched,
    mapping_fingerprint,
)
from repro.mapping import cosa_mapping, round_mapping
from repro.mapping.mapping import identity_mapping
from repro.mapping.random_mapper import random_mapping
from repro.search.api import optimize
from repro.search.gp import GaussianProcessRegressor, expected_improvement
from repro.timeloop import analyze_traffic, evaluate_mapping, evaluate_network_mappings
from repro.workloads import conv2d_layer, get_network, matmul_layer
from repro.workloads.networks import Network

HARDWARE = HardwareConfig(16, 32, 128)
SPEC = GemminiSpec(HARDWARE)

# Layers spanning the interesting shapes: strided conv, 1x1 conv, matmul,
# single-input-channel (depthwise-style) conv, tiny and batch > 1 cases.
CORPUS_LAYERS = [
    conv2d_layer(64, 128, 28, kernel_size=3, stride=2, name="conv_s2"),
    conv2d_layer(32, 64, 14, kernel_size=1, name="conv_1x1"),
    conv2d_layer(1, 96, 56, kernel_size=3, name="depthwise_ish"),
    matmul_layer(512, 768, 768, name="fc"),
    matmul_layer(128, 128, 128, batch=4, name="batched_fc"),
    conv2d_layer(3, 64, 112, kernel_size=7, stride=2, name="stem"),
]


def random_corpus(count: int, seed: int = 0, max_spatial: int = 32):
    rng = np.random.default_rng(seed)
    return [random_mapping(CORPUS_LAYERS[i % len(CORPUS_LAYERS)], seed=rng,
                           max_spatial=max_spatial)
            for i in range(count)]


class TestEvaluationCache:
    def test_hit_returns_identical_result_and_counts(self):
        cache = EvaluationCache()
        mapping = cosa_mapping(CORPUS_LAYERS[0], HARDWARE)
        first = cache.evaluate(mapping, SPEC)
        second = cache.evaluate(mapping.copy(), SPEC)  # equal but distinct object
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert len(cache) == 1

    def test_key_distinguishes_hardware_and_factors(self):
        cache = EvaluationCache()
        mapping = cosa_mapping(CORPUS_LAYERS[0], HARDWARE)
        cache.evaluate(mapping, SPEC)
        cache.evaluate(mapping, GemminiSpec(HardwareConfig(32, 64, 256)))
        other = mapping.copy()
        other.temporal[3, 0] *= 1.0  # unchanged -> same fingerprint
        assert mapping_fingerprint(other) == mapping_fingerprint(mapping)
        assert cache.stats.misses == 2

    def test_fingerprint_ignores_name_and_repeats(self):
        layer = CORPUS_LAYERS[1]
        renamed = layer.with_repeats(7)
        a = cosa_mapping(layer, HARDWARE)
        b = cosa_mapping(renamed, HARDWARE)
        assert mapping_fingerprint(a) == mapping_fingerprint(b)

    def test_lru_eviction(self):
        cache = EvaluationCache(max_entries=2)
        mappings = [cosa_mapping(layer, HARDWARE) for layer in CORPUS_LAYERS[:3]]
        for mapping in mappings:
            cache.evaluate(mapping, SPEC)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry was evicted; re-evaluating it is a miss.
        cache.evaluate(mappings[0], SPEC)
        assert cache.stats.misses == 4

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValueError):
            EvaluationCache(max_entries=0)


class TestBatchParityWithReference:
    """The acceptance bar: bit-identical per-level counts on a random corpus."""

    def test_per_level_accesses_bit_identical(self):
        corpus = random_corpus(120, seed=1)
        batch = batch_analyze_traffic(corpus)
        per_level = batch.per_level_accesses()
        for index, mapping in enumerate(corpus):
            reference = analyze_traffic(mapping)
            for position, level in enumerate(sorted(reference.per_level_accesses())):
                assert per_level[index, position] == reference.accesses(level)

    def test_full_breakdown_tables_bit_identical(self):
        corpus = random_corpus(60, seed=2)
        batch = batch_analyze_traffic(corpus)
        for index, mapping in enumerate(corpus):
            reference = analyze_traffic(mapping)
            extracted = batch.breakdown(index)
            assert extracted.macs == reference.macs
            assert extracted.reads == reference.reads
            assert extracted.writes == reference.writes
            assert extracted.updates == reference.updates

    def test_results_bit_identical_to_scalar_path(self):
        corpus = random_corpus(60, seed=3)
        batched = evaluate_mappings_batched(corpus, SPEC)
        for mapping, result in zip(corpus, batched):
            scalar = evaluate_mapping(mapping, SPEC)
            assert result.latency_cycles == scalar.latency_cycles
            assert result.energy == scalar.energy
            assert result.compute_latency == scalar.compute_latency
            assert result.memory_latency == scalar.memory_latency
            assert result.accesses == scalar.accesses
            assert result.macs == scalar.macs

    def test_empty_batch(self):
        assert evaluate_mappings_batched([], SPEC) == []

    def test_invalid_mapping_raises_scalar_message(self):
        bad = identity_mapping(CORPUS_LAYERS[0])
        bad.temporal[0, 0] = 3.0  # factor product no longer matches the layer
        with pytest.raises(ValueError) as batch_error:
            evaluate_mappings_batched([bad], SPEC)
        with pytest.raises(ValueError) as scalar_error:
            evaluate_mapping(bad, SPEC)
        assert str(batch_error.value) == str(scalar_error.value)

    def test_accepts_hardware_config_argument(self):
        corpus = random_corpus(4, seed=4)
        assert (evaluate_mappings_batched(corpus, HARDWARE)[0].edp
                == evaluate_mapping(corpus[0], SPEC).edp)


class TestParallelEvaluator:
    def test_results_match_serial(self):
        corpus = random_corpus(40, seed=5)
        serial = evaluate_mappings_batched(corpus, SPEC)
        with ParallelEvaluator(n_workers=2, min_chunk_size=8) as pool:
            parallel = pool.evaluate_many(corpus, SPEC)
        assert len(parallel) == len(serial)
        for a, b in zip(serial, parallel):
            assert a.latency_cycles == b.latency_cycles
            assert a.energy == b.energy
            assert a.accesses == b.accesses

    def test_small_batches_stay_in_process(self):
        corpus = random_corpus(4, seed=6)
        pool = ParallelEvaluator(n_workers=2, min_chunk_size=16)
        try:
            results = pool.evaluate_many(corpus, SPEC)
            assert pool._executor is None  # never spawned
            assert results[0].edp == evaluate_mapping(corpus[0], SPEC).edp
        finally:
            pool.close()

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelEvaluator(n_workers=0)


class TestEvaluationEngine:
    def test_in_batch_duplicates_are_hits(self):
        corpus = random_corpus(10, seed=7)
        engine = EvaluationEngine()
        results = engine.evaluate_many(corpus + corpus, SPEC)
        assert engine.stats.misses == 10
        assert engine.stats.hits == 10
        for a, b in zip(results[:10], results[10:]):
            assert a is b

    def test_cross_batch_cache_reuse(self):
        corpus = random_corpus(6, seed=8)
        engine = EvaluationEngine()
        first = engine.evaluate_many(corpus, SPEC)
        second = engine.evaluate_many(corpus, SPEC)
        assert engine.stats.hits == 6
        assert all(a is b for a, b in zip(first, second))

    def test_single_evaluate_shares_cache_with_batches(self):
        corpus = random_corpus(3, seed=9)
        engine = EvaluationEngine()
        engine.evaluate_many(corpus, SPEC)
        assert engine.evaluate(corpus[1], SPEC) is not None
        assert engine.stats.hits == 1

    def test_evaluate_network_matches_scalar_helper(self):
        network = get_network("bert")
        mappings = [cosa_mapping(layer, HARDWARE) for layer in network.layers]
        engine = EvaluationEngine()
        composed = engine.evaluate_network(mappings, SPEC)
        reference = evaluate_network_mappings(mappings, SPEC)
        assert composed.total_latency == reference.total_latency
        assert composed.total_energy == reference.total_energy
        assert composed.edp == reference.edp

    def test_evaluate_network_requires_mappings(self):
        with pytest.raises(ValueError):
            EvaluationEngine().evaluate_network([], SPEC)

    def test_parallel_engine_results_identical(self):
        corpus = random_corpus(80, seed=10)
        serial = EvaluationEngine().evaluate_many(corpus, SPEC)
        with EvaluationEngine(n_workers=2) as engine:
            parallel = engine.evaluate_many(corpus, SPEC)
        for a, b in zip(serial, parallel):
            assert a.latency_cycles == b.latency_cycles
            assert a.energy == b.energy


class TestSearchersThroughEngine:
    def tiny_network(self):
        return Network(name="tiny", layers=[
            conv2d_layer(16, 32, 7, name="conv"),
            matmul_layer(32, 64, 64, name="fc"),
        ])

    def test_optimize_accepts_n_workers(self):
        outcome = optimize(self.tiny_network(), "random", budget=40, seed=0,
                           n_workers=2)
        assert outcome.best_edp > 0
        assert outcome.total_samples <= 40 + 2

    def test_n_workers_does_not_change_the_outcome(self):
        from repro.search import RandomSearchSettings

        settings = lambda: RandomSearchSettings(num_hardware_designs=2,
                                                mappings_per_layer=30, seed=3)
        serial = optimize(self.tiny_network(), "random", settings=settings())
        pooled = optimize(self.tiny_network(), "random", settings=settings(),
                          n_workers=2)
        assert pooled.best_edp == serial.best_edp
        assert pooled.trace.as_pairs() == serial.trace.as_pairs()


class TestZeroBandwidthValidation:
    def test_descriptive_error_names_the_level(self):
        class BrokenSpec(GemminiSpec):
            def bandwidth(self, level):
                return 0.0 if level == 2 else super().bandwidth(level)

        mapping = cosa_mapping(CORPUS_LAYERS[0], HARDWARE)
        with pytest.raises(ValueError, match=r"level 2 \(scratchpad\).*bandwidth"):
            evaluate_mapping(mapping, BrokenSpec(HARDWARE))


class TestRoundingMaxSpatial:
    def test_fractional_cap_rounds_to_nearest(self):
        layer = conv2d_layer(64, 64, 14, name="conv")
        mapping = identity_mapping(layer)
        mapping.temporal[3, 4] = 1.0   # C moved off DRAM...
        mapping.spatial[1, 4] = 16.0   # ...onto the spatial position
        # A mesh bound of 15.9999999 (float noise on 16) must not truncate
        # the spatial factor down to the divisor 8.
        rounded = round_mapping(mapping, max_spatial=15.9999999)
        assert rounded.spatial_factor(1, "C") == 16.0

    def test_integer_caps_unchanged(self):
        layer = conv2d_layer(64, 64, 14, name="conv")
        mapping = identity_mapping(layer)
        mapping.temporal[3, 4] = 1.0
        mapping.spatial[1, 4] = 16.0
        rounded = round_mapping(mapping, max_spatial=8)
        assert rounded.spatial_factor(1, "C") <= 8.0

    def test_cap_below_one_rejected(self):
        layer = conv2d_layer(8, 8, 4, name="conv")
        with pytest.raises(ValueError, match="max_spatial"):
            round_mapping(identity_mapping(layer), max_spatial=0.5)


class TestGpVarianceClamp:
    def test_near_duplicate_training_points_keep_std_finite(self):
        # Near-duplicate rows drive the Cholesky-solved posterior variance
        # slightly negative at the training points; the clamp must keep the
        # std (and expected improvement) finite instead of NaN.
        rng = np.random.default_rng(0)
        base = rng.normal(size=(12, 3))
        features = np.vstack([base, base + 1e-12])
        targets = np.concatenate([base.sum(axis=1), base.sum(axis=1)])
        gp = GaussianProcessRegressor(noise=1e-6).fit(features, targets)
        mean, std = gp.predict(features, return_std=True)
        assert np.all(np.isfinite(std))
        assert np.all(std >= 0.0)
        ei = expected_improvement(mean, std, best=float(targets.min()))
        assert np.all(np.isfinite(ei))
        assert np.all(ei >= 0.0)
