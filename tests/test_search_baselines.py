"""Tests for the random-search and Bayesian-optimization baselines and the GP."""

import numpy as np
import pytest

from repro.arch import HardwareConfig
from repro.search import (
    BayesianSearcher,
    BayesianSettings,
    BestSoFarTrace,
    GaussianProcessRegressor,
    RandomSearcher,
    RandomSearchSettings,
    best_random_mappings_for_hardware,
    expected_improvement,
)
from repro.mapping import mapping_fits_hardware, mapping_is_valid
from repro.workloads.layer import conv2d_layer, matmul_layer
from repro.workloads.networks import Network


def tiny_network() -> Network:
    return Network(name="tiny", layers=[
        conv2d_layer(32, 64, 14, name="conv"),
        matmul_layer(64, 128, 256, name="fc"),
    ])


class TestBestSoFarTrace:
    def test_is_the_unified_trace(self):
        # BestSoFarTrace is now an alias of the single unified SearchTrace.
        from repro.search.api import SearchTrace

        assert BestSoFarTrace is SearchTrace

    def test_monotone(self):
        trace = BestSoFarTrace()
        trace.record(1, 10.0)
        trace.record(2, 20.0)
        trace.record(3, 5.0)
        assert [p.best_edp for p in trace.points] == [10.0, 10.0, 5.0]
        assert trace.best_after(2) == 10.0
        assert trace.final_best == 5.0
        assert trace.total_samples == 3


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(30, 2))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1]
        gp = GaussianProcessRegressor(length_scale=1.0, noise=1e-6).fit(x, y)
        predictions = gp.predict(x)
        assert np.max(np.abs(predictions - y)) < 0.05

    def test_uncertainty_grows_away_from_data(self):
        x = np.linspace(0, 1, 10).reshape(-1, 1)
        y = np.sin(3 * x).ravel()
        gp = GaussianProcessRegressor(length_scale=0.2).fit(x, y)
        _, std_near = gp.predict(np.array([[0.5]]), return_std=True)
        _, std_far = gp.predict(np.array([[5.0]]), return_std=True)
        assert std_far[0] > std_near[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(length_scale=0.0)

    def test_fit_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_expected_improvement_prefers_low_mean_for_minimization(self):
        ei = expected_improvement(np.array([1.0, 5.0]), np.array([1.0, 1.0]), best=3.0)
        assert ei[0] > ei[1]

    def test_expected_improvement_zero_std_safe(self):
        ei = expected_improvement(np.array([10.0]), np.array([0.0]), best=1.0)
        assert np.isfinite(ei).all()


class TestRandomSearcher:
    def test_settings_validation(self):
        with pytest.raises(ValueError):
            RandomSearchSettings(num_hardware_designs=0)

    def test_search_returns_feasible_design(self):
        settings = RandomSearchSettings(num_hardware_designs=3, mappings_per_layer=15, seed=0)
        outcome = RandomSearcher(tiny_network(), settings).search()
        assert outcome.method == "random"
        assert outcome.best_edp > 0
        assert len(outcome.best_mappings) == 2
        for mapping in outcome.best_mappings:
            assert mapping_is_valid(mapping)
        assert outcome.trace.total_samples > 0
        assert outcome.trace.final_best == pytest.approx(outcome.best_edp)

    def test_more_samples_never_hurts(self):
        small = RandomSearcher(tiny_network(),
                               RandomSearchSettings(2, 10, seed=1)).search()
        large = RandomSearcher(tiny_network(),
                               RandomSearchSettings(6, 10, seed=1)).search()
        assert large.best_edp <= small.best_edp * (1 + 1e-9)


class TestBayesianSearcher:
    def test_settings_validation(self):
        with pytest.raises(ValueError):
            BayesianSettings(num_training_hardware=0)

    def test_search_returns_feasible_design(self):
        settings = BayesianSettings(num_training_hardware=3, mappings_per_layer=8,
                                    num_candidates=5, candidate_mappings_per_layer=5, seed=0)
        outcome = BayesianSearcher(tiny_network(), settings).search()
        assert outcome.method == "bayesian"
        assert outcome.best_edp > 0
        assert len(outcome.best_mappings) == 2
        assert outcome.trace.total_samples > 0


class TestRandomMapperSearch:
    def test_mappings_fit_fixed_hardware(self):
        hardware = HardwareConfig(16, 32, 128)
        mappings, performance = best_random_mappings_for_hardware(
            tiny_network(), hardware, mappings_per_layer=20, seed=0)
        assert len(mappings) == 2
        assert performance.edp > 0
        for mapping in mappings:
            assert mapping_is_valid(mapping)
            assert mapping_fits_hardware(mapping, hardware)

    def test_rejects_zero_mappings(self):
        with pytest.raises(ValueError):
            best_random_mappings_for_hardware(tiny_network(), HardwareConfig(16, 32, 128),
                                              mappings_per_layer=0)

    def test_more_mappings_never_hurts(self):
        hardware = HardwareConfig(16, 32, 128)
        _, small = best_random_mappings_for_hardware(tiny_network(), hardware, 5, seed=2)
        _, large = best_random_mappings_for_hardware(tiny_network(), hardware, 40, seed=2)
        assert large.edp <= small.edp * (1 + 1e-9)
