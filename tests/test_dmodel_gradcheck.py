"""Finite-difference verification of the full differentiable model's gradients.

The DOSA search rests entirely on the gradients of the EDP objective with
respect to the log tiling factors; these tests verify them end to end (through
capacities, traffic, roofline latency, capacity-dependent energy, the hardware
derivation and the Eq. 18 penalty) against central finite differences.
"""

import numpy as np
import pytest

from repro.arch import HardwareConfig
from repro.core.dmodel import (
    DifferentiableHardware,
    DifferentiableModel,
    LayerFactors,
    NetworkFactors,
    network_edp_loss,
    softmax_ordering_loss,
    validity_penalty,
)
from repro.mapping import cosa_mapping
from repro.workloads import conv2d_layer, matmul_layer

CONFIG = HardwareConfig(8, 16, 64)


def _perturb_off_kinks(factors: LayerFactors, seed: int = 0) -> LayerFactors:
    """Nudge log-factors away from the model's non-smooth points.

    The model is piecewise smooth: factors exactly equal to 1 sit on the
    boundary of the loop-reuse structural rule, and exact ties inside the
    roofline max make one-sided finite differences meaningless.  Gradient
    checking is only well-defined on the smooth pieces, so the starting point
    is shifted strictly inside one.
    """
    rng = np.random.default_rng(seed)
    factors.log_temporal.data = factors.log_temporal.data + rng.uniform(
        0.07, 0.23, size=factors.log_temporal.data.shape)
    factors.log_spatial.data = factors.log_spatial.data + rng.uniform(
        0.07, 0.23, size=factors.log_spatial.data.shape)
    return factors


def _numeric_gradient(factors_list, loss_fn, parameter, eps=1e-5):
    """Central finite differences of ``loss_fn()`` w.r.t. ``parameter``."""
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = float(loss_fn().data)
        flat[index] = original - eps
        minus = float(loss_fn().data)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def _check_model_gradients(factors_list, loss_fn, rtol=2e-3, atol=1e-2):
    for factors in factors_list:
        for parameter in factors.parameters():
            parameter.zero_grad()
    loss = loss_fn()
    loss.backward()
    scale = max(abs(float(loss.data)), 1.0)
    for factors in factors_list:
        for parameter in factors.parameters():
            analytic = parameter.grad if parameter.grad is not None else np.zeros_like(parameter.data)
            numeric = _numeric_gradient(factors_list, loss_fn, parameter)
            # Gradients of EDP-scale quantities are huge; compare relative to
            # the loss magnitude so tolerances are meaningful.
            assert np.allclose(analytic / scale, numeric / scale, rtol=rtol, atol=atol), (
                f"gradient mismatch for {parameter.name}:\n{analytic}\nvs\n{numeric}")


class TestFullModelGradients:
    def test_fixed_hardware_layer_edp(self):
        factors = _perturb_off_kinks(LayerFactors.from_mapping(
            cosa_mapping(conv2d_layer(16, 32, 14), CONFIG)), seed=1)
        hardware = DifferentiableHardware.from_config(CONFIG)

        def loss_fn():
            return DifferentiableModel.evaluate_layer(factors, hardware).edp

        _check_model_gradients([factors], loss_fn)

    def test_derived_hardware_network_edp_with_penalty(self):
        layers = [conv2d_layer(16, 32, 14), matmul_layer(28, 64, 32)]
        factors = [_perturb_off_kinks(LayerFactors.from_mapping(cosa_mapping(l, CONFIG)), seed=i)
                   for i, l in enumerate(layers)]

        def loss_fn():
            hardware = DifferentiableModel.derive_hardware(factors)
            performances = DifferentiableModel.evaluate_network(factors, hardware)
            return network_edp_loss(performances, [1, 2]) + 1e6 * validity_penalty(factors)

        _check_model_gradients(factors, loss_fn)

    def test_softmax_ordering_loss_gradients(self):
        factors = [_perturb_off_kinks(LayerFactors.from_mapping(
            cosa_mapping(conv2d_layer(16, 32, 14), CONFIG)), seed=5)]

        def loss_fn():
            return softmax_ordering_loss(factors, [1])

        _check_model_gradients(factors, loss_fn)

    def test_batched_derived_hardware_network_edp_with_penalty(self):
        """Gradcheck the layer-batched model directly (NetworkFactors leaves)."""
        layers = [conv2d_layer(16, 32, 14), matmul_layer(28, 64, 32)]
        per_layer = [_perturb_off_kinks(LayerFactors.from_mapping(cosa_mapping(l, CONFIG)),
                                        seed=i) for i, l in enumerate(layers)]
        factors = NetworkFactors.from_layer_factors(per_layer)

        def loss_fn():
            grid = factors.factor_grid()
            hardware = DifferentiableModel.derive_hardware(factors, grid=grid)
            performances = DifferentiableModel.evaluate_network(factors, hardware,
                                                                grid=grid)
            return (network_edp_loss(performances, [1, 2])
                    + 1e6 * validity_penalty(factors, grid=grid))

        _check_model_gradients([factors], loss_fn)

    def test_batched_softmax_ordering_loss_gradients(self):
        per_layer = [_perturb_off_kinks(LayerFactors.from_mapping(
            cosa_mapping(conv2d_layer(16, 32, 14), CONFIG)), seed=5)]
        factors = NetworkFactors.from_layer_factors(per_layer)

        def loss_fn():
            return softmax_ordering_loss(factors, [1])

        _check_model_gradients([factors], loss_fn)

    def test_penalty_gradient_pushes_factors_up(self):
        factors = LayerFactors.from_mapping(
            cosa_mapping(conv2d_layer(16, 32, 14), CONFIG))
        # Push an inner factor so far up that the inferred DRAM factor drops
        # below one; the penalty gradient must then *reduce* that factor.
        factors.log_temporal.data[0, 3] += 4.0  # Q at the register level
        penalty = validity_penalty([factors])
        assert float(penalty.data) > 0
        penalty.backward()
        assert factors.log_temporal.grad[0, 3] > 0  # descent will decrease it
