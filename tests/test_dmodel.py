"""Tests for the DOSA differentiable model (Equations 1-18)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import GemminiSpec, HardwareConfig, random_hardware_config
from repro.autodiff import Adam, Tensor
from repro.core.dmodel import (
    DifferentiableHardware,
    DifferentiableModel,
    LayerFactors,
    network_edp_loss,
    softmax_ordering_loss,
    validity_penalty,
)
from repro.core.dmodel.loss import best_ordering_per_layer, ordering_candidates
from repro.mapping import LoopOrdering, cosa_mapping, random_mapping
from repro.timeloop import analyze_traffic, evaluate_mapping
from repro.workloads import LayerDims, conv2d_layer, matmul_layer
from repro.workloads.registry import correlation_layer_pool


def _relative_error(a: float, b: float) -> float:
    return abs(a - b) / max(abs(b), 1e-12)


class TestDifferentiableHardware:
    def test_from_config_matches_table2(self):
        config = HardwareConfig(16, 32, 128)
        hardware = DifferentiableHardware.from_config(config)
        spec = GemminiSpec(config)
        for level in range(4):
            assert float(hardware.energy_per_access(level)) == pytest.approx(
                spec.energy_per_access(level))
            assert float(hardware.bandwidth(level)) == pytest.approx(spec.bandwidth(level))

    def test_from_requirements_takes_max_side(self):
        hardware = DifferentiableHardware.from_requirements(
            spatial_factors=[Tensor(8.0), Tensor(32.0), Tensor(16.0)],
            accumulator_words=Tensor(1024.0),
            scratchpad_words=Tensor(2048.0),
        )
        assert float(hardware.num_pes.data) == pytest.approx(1024.0)
        assert float(hardware.accumulator_kb.data) == pytest.approx(4.0)
        assert float(hardware.scratchpad_kb.data) == pytest.approx(2.0)

    def test_to_config_rounds_up(self):
        hardware = DifferentiableHardware(num_pes=200.0, accumulator_kb=3.2, scratchpad_kb=7.9)
        config = hardware.to_config()
        assert config.pe_dim == 15
        assert config.accumulator_kb == 4
        assert config.scratchpad_kb == 8

    def test_gradients_flow_through_epa(self):
        capacity = Tensor(64.0, requires_grad=True)
        hardware = DifferentiableHardware(num_pes=256.0, accumulator_kb=capacity,
                                          scratchpad_kb=128.0)
        hardware.energy_per_access(1).backward()
        assert capacity.grad is not None and capacity.grad > 0


class TestLayerFactors:
    def test_roundtrip_through_mapping(self):
        config = HardwareConfig(16, 32, 128)
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), config)
        factors = LayerFactors.from_mapping(mapping)
        snapshot = factors.snapshot_mapping()
        assert np.allclose(snapshot.temporal, mapping.temporal, rtol=1e-9)
        assert np.allclose(snapshot.spatial, mapping.spatial, rtol=1e-9)

    def test_rounded_mapping_is_valid(self):
        from repro.mapping import mapping_is_valid

        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HardwareConfig(16, 32, 128))
        factors = LayerFactors.from_mapping(mapping)
        factors.log_temporal.data += 0.3  # perturb off the divisor lattice
        assert mapping_is_valid(factors.rounded_mapping(max_spatial=128))

    def test_factor_grid_infers_dram(self):
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HardwareConfig(16, 32, 128))
        factors = LayerFactors.from_mapping(mapping)
        grid = factors.factor_grid()
        for dim in ("R", "S", "P", "Q", "C", "K", "N"):
            product = 1.0
            for level in range(4):
                for kind in ("T", "S"):
                    value = grid[(kind, level, dim)]
                    product *= float(value.data) if isinstance(value, Tensor) else value
            assert product == pytest.approx(mapping.layer.dim(dim), rel=1e-9)

    def test_load_mapping_keeps_tensor_identity(self):
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HardwareConfig(16, 32, 128))
        factors = LayerFactors.from_mapping(mapping)
        original_parameter = factors.log_temporal
        factors.load_mapping(mapping)
        assert factors.log_temporal is original_parameter

    def test_with_orderings_shares_parameters(self):
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HardwareConfig(16, 32, 128))
        factors = LayerFactors.from_mapping(mapping)
        view = factors.with_orderings([LoopOrdering.OUTPUT_STATIONARY] * 4)
        assert view.log_temporal is factors.log_temporal
        assert view.orderings[0] is LoopOrdering.OUTPUT_STATIONARY


class TestCorrelationWithReference:
    """The differentiable model must track the reference model closely (Fig. 4)."""

    def test_exact_match_on_valid_mapping_fixed_hardware(self):
        config = HardwareConfig(16, 32, 128)
        mapping = cosa_mapping(conv2d_layer(64, 64, 56), config)
        reference = evaluate_mapping(mapping, GemminiSpec(config))
        performance = DifferentiableModel.evaluate_layer(
            LayerFactors.from_mapping(mapping), DifferentiableHardware.from_config(config))
        assert _relative_error(float(performance.latency.data), reference.latency_cycles) < 1e-6
        assert _relative_error(float(performance.energy.data), reference.energy) < 0.01

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_close_on_random_mappings_and_configs(self, seed):
        rng = np.random.default_rng(seed)
        pool = correlation_layer_pool()
        layer = pool[int(rng.integers(len(pool)))]
        config = random_hardware_config(seed=rng)
        mapping = random_mapping(layer, seed=rng, max_spatial=config.pe_dim)
        reference = evaluate_mapping(mapping, GemminiSpec(config))
        performance = DifferentiableModel.evaluate_layer(
            LayerFactors.from_mapping(mapping), DifferentiableHardware.from_config(config))
        assert _relative_error(float(performance.latency.data), reference.latency_cycles) < 0.02
        # Energy differs only through DRAM block rounding, small for real layers.
        assert _relative_error(float(performance.energy.data), reference.energy) < 0.15

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_traffic_parity_with_reference_walk(self, seed):
        """Per-level traffic parity on integral mappings (ceiling slack only).

        Property test for the ``seen_relevant`` / near-1-factor skip in
        ``DifferentiableModel.reload_factor``: on integral mappings with
        randomized loop orderings, every level's access count must agree with
        the reference walk in :func:`analyze_traffic` up to the reference
        path's ceiling semantics (integer tile extents), which only ever
        *increase* the reference counts and only slightly for real layers.
        """
        rng = np.random.default_rng(seed)
        pool = correlation_layer_pool()
        layer = pool[int(rng.integers(len(pool)))]
        mapping = random_mapping(layer, seed=rng, max_spatial=32)
        assert mapping.is_integral()

        reference = analyze_traffic(mapping)
        factors = LayerFactors.from_mapping(mapping)
        accesses = DifferentiableModel.traffic(factors, factors.factor_grid())

        for level, reference_accesses in reference.per_level_accesses().items():
            model_accesses = float(accesses[level].data)
            # Ceiling slack: the reference rounds tile extents up, so it may
            # exceed the smooth model, never meaningfully the other way.
            assert model_accesses <= reference_accesses * (1 + 1e-6), level
            assert _relative_error(model_accesses, reference_accesses) < 0.05, level


class TestGradients:
    def test_edp_gradient_nonzero_for_all_layers(self):
        config = HardwareConfig(16, 32, 128)
        layers = [conv2d_layer(64, 64, 28), matmul_layer(196, 256, 512)]
        factors = [LayerFactors.from_mapping(cosa_mapping(l, config)) for l in layers]
        hardware = DifferentiableModel.derive_hardware(factors)
        performances = DifferentiableModel.evaluate_network(factors, hardware)
        loss = network_edp_loss(performances, [1, 1])
        loss.backward()
        for layer_factors in factors:
            assert layer_factors.log_temporal.grad is not None
            assert np.any(layer_factors.log_temporal.grad != 0.0)
            assert layer_factors.log_spatial.grad is not None

    def test_descent_reduces_model_loss(self):
        config = HardwareConfig(8, 16, 64)
        layers = [conv2d_layer(64, 64, 28), matmul_layer(196, 256, 512)]
        factors = [LayerFactors.from_mapping(cosa_mapping(l, config)) for l in layers]
        parameters = [p for f in factors for p in f.parameters()]
        optimizer = Adam(parameters, lr=0.05)
        losses = []
        for _ in range(60):
            optimizer.zero_grad()
            hardware = DifferentiableModel.derive_hardware(factors)
            performances = DifferentiableModel.evaluate_network(factors, hardware)
            loss = network_edp_loss(performances, [1, 1]) + 1e9 * validity_penalty(factors)
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.8

    def test_spatial_gradient_encourages_parallelism(self):
        # For a compute-bound layer, increasing the spatial factors lowers
        # latency, so the gradient of EDP w.r.t. log-spatial must be negative.
        config = HardwareConfig(4, 64, 256)
        mapping = cosa_mapping(conv2d_layer(256, 256, 28), config)
        factors = LayerFactors.from_mapping(mapping)
        hardware = DifferentiableModel.derive_hardware([factors])
        performance = DifferentiableModel.evaluate_layer(factors, hardware)
        performance.edp.backward()
        assert np.all(factors.log_spatial.grad < 0)


class TestPenaltyAndOrderings:
    def test_validity_penalty_zero_for_valid(self):
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HardwareConfig(16, 32, 128))
        factors = LayerFactors.from_mapping(mapping)
        assert float(validity_penalty([factors]).data) == pytest.approx(0.0, abs=1e-9)

    def test_validity_penalty_positive_when_overshooting(self):
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HardwareConfig(16, 32, 128))
        factors = LayerFactors.from_mapping(mapping)
        # Inflate an inner factor beyond the problem size: the inferred DRAM
        # factor drops below 1 and the Eq. 18 penalty must fire.
        factors.log_temporal.data[0, :] += 3.0
        assert float(validity_penalty([factors]).data) > 0.0

    def test_ordering_candidates_cover_ws_is_os(self):
        mapping = cosa_mapping(conv2d_layer(64, 64, 28), HardwareConfig(16, 32, 128))
        candidates = ordering_candidates(LayerFactors.from_mapping(mapping))
        assert [c.orderings[0].value for c in candidates] == ["WS", "IS", "OS"]

    def test_best_ordering_returns_one_per_layer(self):
        config = HardwareConfig(16, 32, 128)
        factors = [LayerFactors.from_mapping(cosa_mapping(l, config))
                   for l in (conv2d_layer(64, 64, 28), matmul_layer(64, 128, 256))]
        selections = best_ordering_per_layer(factors)
        assert len(selections) == 2
        assert all(isinstance(s, LoopOrdering) for s in selections)

    def test_softmax_loss_close_to_best_ordering_loss(self):
        config = HardwareConfig(16, 32, 128)
        factors = [LayerFactors.from_mapping(cosa_mapping(conv2d_layer(64, 64, 28), config))]
        hardware = DifferentiableModel.derive_hardware(factors)
        soft = float(softmax_ordering_loss(factors, [1], hardware).data)
        per_ordering = []
        for candidate in ordering_candidates(factors[0]):
            perf = DifferentiableModel.evaluate_layer(candidate, hardware)
            per_ordering.append(float(perf.edp.data))
        assert min(per_ordering) <= soft <= max(per_ordering) * 1.01

    def test_network_loss_requires_matching_repeats(self):
        config = HardwareConfig(16, 32, 128)
        factors = [LayerFactors.from_mapping(cosa_mapping(conv2d_layer(64, 64, 28), config))]
        performances = DifferentiableModel.evaluate_network(factors)
        with pytest.raises(ValueError):
            network_edp_loss(performances, [1, 2])


class TestHardwareDerivation:
    def test_derived_hardware_supports_all_layers(self):
        config = HardwareConfig(16, 32, 128)
        layers = [conv2d_layer(64, 64, 56), matmul_layer(512, 768, 768)]
        factors = [LayerFactors.from_mapping(cosa_mapping(l, config)) for l in layers]
        hardware = DifferentiableModel.derive_hardware(factors)
        derived = hardware.to_config()
        from repro.mapping import mapping_fits_hardware

        for layer_factors in factors:
            assert mapping_fits_hardware(layer_factors.rounded_mapping(), derived)

    def test_derive_hardware_rejects_empty(self):
        with pytest.raises(ValueError):
            DifferentiableModel.derive_hardware([])
