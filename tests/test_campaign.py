"""Campaign subsystem: spec grids, store atomicity, crash-safe resume, CLI."""

import json

import pytest

from repro.arch.config import HardwareConfig, random_hardware_config
from repro.campaign import (
    CampaignReport,
    CampaignScheduler,
    CampaignSpec,
    ResultStore,
    StoreCorruptionError,
    StrategyVariant,
    run_campaign,
)
from repro.campaign.store import cache_entry_from_dict, cache_entry_to_dict
from repro.eval.cache import EvaluationCache
from repro.eval.engine import EvaluationEngine
from repro.mapping.cosa import cosa_mapping
from repro.search.api import SearchCallback, SearchSession
from repro.utils.serialization import outcome_from_dict, outcome_to_dict
from repro.workloads.networks import get_network

import repro


def tiny_spec(seeds=(0, 1), budgets=None, name="tiny"):
    """A seconds-scale two-strategy grid on bert."""
    kwargs = {} if budgets is None else {"budgets": budgets}
    return CampaignSpec(
        name=name,
        workloads=("bert",),
        strategies=(
            StrategyVariant("dosa", settings={"num_start_points": 1,
                                              "gd_steps": 20,
                                              "rounding_period": 10}),
            StrategyVariant("random", settings={"num_hardware_designs": 2,
                                                "mappings_per_layer": 5}),
        ),
        seeds=seeds,
        **kwargs,
    )


# --------------------------------------------------------------------------- #
# CampaignSpec
# --------------------------------------------------------------------------- #
class TestCampaignSpec:
    def test_grid_expansion_order_and_ids(self):
        spec = tiny_spec()
        ids = [job.job_id for job in spec.jobs()]
        assert ids == [
            "bert/dosa/seed=0/budget=0",
            "bert/dosa/seed=1/budget=0",
            "bert/random/seed=0/budget=0",
            "bert/random/seed=1/budget=0",
        ]
        assert spec.grid_size == 4
        assert len(set(ids)) == len(ids)

    def test_json_round_trip(self, tmp_path):
        spec = CampaignSpec(
            name="rt",
            workloads=("bert", "resnet50"),
            strategies=(
                StrategyVariant("dosa", settings={"gd_steps": 50}),
                StrategyVariant("pinned", strategy="fixed_hw_random",
                                hardware=HardwareConfig(16, 32, 128)),
            ),
            seeds=(0, 7),
            budgets=(repro.SearchBudget(max_samples=100),
                     repro.SearchBudget()),
        )
        path = spec.save(tmp_path / "spec.json")
        reloaded = CampaignSpec.load(path)
        assert reloaded.to_dict() == spec.to_dict()
        assert reloaded.strategies[1].hardware == HardwareConfig(16, 32, 128)
        assert reloaded.budgets[0].max_samples == 100

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown workloads"):
            CampaignSpec(name="x", workloads=("nope",),
                         strategies=(StrategyVariant("dosa"),))
        with pytest.raises(ValueError, match="duplicate strategy"):
            CampaignSpec(name="x", workloads=("bert",),
                         strategies=(StrategyVariant("dosa"),
                                     StrategyVariant("dosa")))
        with pytest.raises(KeyError, match="unknown search strategy"):
            CampaignSpec(name="x", workloads=("bert",),
                         strategies=(StrategyVariant("not-a-strategy"),))
        with pytest.raises(ValueError, match="requires hardware"):
            CampaignSpec(name="x", workloads=("bert",),
                         strategies=(StrategyVariant("fixed_hw_random"),))
        with pytest.raises(ValueError, match="JSON-safe"):
            StrategyVariant("dosa", settings={"bounds": object()})

    def test_seeds_must_be_json_safe(self):
        import numpy as np
        with pytest.raises(ValueError, match="seeds must be JSON-safe"):
            CampaignSpec(name="x", workloads=("bert",),
                         strategies=(StrategyVariant("dosa"),),
                         seeds=(np.random.default_rng(0),))

    def test_job_named(self):
        spec = tiny_spec()
        job = spec.job_named("bert/random/seed=1/budget=0")
        assert job.variant.strategy == "random" and job.seed == 1
        with pytest.raises(KeyError):
            spec.job_named("bert/random/seed=9/budget=0")


# --------------------------------------------------------------------------- #
# ResultStore
# --------------------------------------------------------------------------- #
class TestResultStore:
    def test_manifest_spec_round_trip_and_mismatch(self, tmp_path):
        spec = tiny_spec()
        ResultStore(tmp_path / "s", spec=spec)
        reopened = ResultStore(tmp_path / "s")  # spec comes from the manifest
        assert reopened.spec.to_dict() == spec.to_dict()
        with pytest.raises(ValueError, match="different grid"):
            ResultStore(tmp_path / "s", spec=tiny_spec(seeds=(5,)))
        with pytest.raises(ValueError, match="no campaign manifest"):
            ResultStore(tmp_path / "empty")

    def test_truncated_tail_is_dropped_not_loaded(self, tmp_path):
        spec = tiny_spec(seeds=(0,))
        store = ResultStore(tmp_path / "s", spec=spec)
        run = CampaignScheduler(spec, store).run()
        assert run.complete and len(store.completed_job_ids()) == 2

        # Simulate a crash mid-append: chop the final record in half.
        text = store.results_path.read_text()
        lines = text.splitlines()
        store.results_path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][:len(lines[-1]) // 2])

        fresh = ResultStore(tmp_path / "s")
        records = fresh.records()
        assert fresh.dropped_truncated_tail
        assert len(records) == 1  # the damaged record is re-run, not loaded
        assert len(fresh.completed_job_ids()) == 1

        # Resume re-runs exactly the dropped job and completes the grid.
        resumed = CampaignScheduler(spec, fresh).run()
        assert resumed.ran == ["bert/random/seed=0/budget=0"]
        assert resumed.complete

    def test_corrupt_middle_record_raises(self, tmp_path):
        spec = tiny_spec(seeds=(0,))
        store = ResultStore(tmp_path / "s", spec=spec)
        CampaignScheduler(spec, store).run()
        lines = store.results_path.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # damage a non-tail record
        store.results_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreCorruptionError):
            ResultStore(tmp_path / "s").records()

    def test_cache_spill_round_trip_bit_identical(self, tmp_path):
        network = get_network("bert")
        hardware = random_hardware_config(seed=0)
        mappings = [cosa_mapping(layer, hardware) for layer in network.layers]
        with EvaluationEngine() as engine:
            expected = engine.evaluate_many(mappings, hardware)
            entries = engine.cache.items()
        for entry, payload in zip(entries,
                                  (cache_entry_to_dict(*e) for e in entries)):
            key, result = cache_entry_from_dict(
                json.loads(json.dumps(payload)))
            assert key == entry[0]
            assert result == entry[1]  # dataclass equality covers every field

        store = ResultStore(tmp_path / "s", spec=tiny_spec())
        assert store.append_cache_segment("seg.jsonl", entries) == len(entries)
        loaded = store.load_cache()
        assert len(loaded) == len(entries)
        # A preloaded cache serves the evaluations as pure hits.
        with EvaluationEngine(cache=loaded) as engine:
            again = engine.evaluate_many(mappings, hardware)
        assert again == expected
        assert loaded.stats.misses == 0 and loaded.stats.hits == len(mappings)


# --------------------------------------------------------------------------- #
# Scheduler: resume, sharding, interrupts
# --------------------------------------------------------------------------- #
class TestSchedulerResume:
    def test_interrupt_between_jobs_then_resume_matches_uninterrupted(
            self, tmp_path):
        spec = tiny_spec()

        baseline = ResultStore(tmp_path / "baseline", spec=spec)
        CampaignScheduler(spec, baseline).run()
        baseline_report = CampaignReport.from_store(baseline).to_text()

        # Interrupt the campaign after two persisted jobs.
        def stop_after_two(job, outcome, _count=[0]):
            _count[0] += 1
            if _count[0] == 2:
                raise KeyboardInterrupt

        store = ResultStore(tmp_path / "resumable", spec=spec)
        first = CampaignScheduler(spec, store).run(on_job_done=stop_after_two)
        assert first.was_interrupted and len(first.ran) == 2
        assert len(first.pending_after) == 2

        second = CampaignScheduler(spec, store).run()
        assert second.skipped and second.complete
        assert set(second.ran) == set(first.pending_after)
        assert CampaignReport.from_store(store).to_text() == baseline_report

    def test_mid_job_interrupt_persists_best_so_far_and_resumes(
            self, tmp_path, monkeypatch):
        spec = tiny_spec()
        baseline = ResultStore(tmp_path / "baseline", spec=spec)
        CampaignScheduler(spec, baseline).run()
        baseline_report = CampaignReport.from_store(baseline).to_text()

        # Raise KeyboardInterrupt inside the third job's search loop, after
        # it has offered a candidate — the searcher absorbs it and returns an
        # interrupted best-so-far outcome.
        original_offer = SearchSession.offer
        offers = {"count": 0}

        def interrupting_offer(self, candidate):
            improved = original_offer(self, candidate)
            offers["count"] += 1
            if offers["count"] == 5:
                raise KeyboardInterrupt
            return improved

        monkeypatch.setattr(SearchSession, "offer", interrupting_offer)
        store = ResultStore(tmp_path / "resumable", spec=spec)
        first = CampaignScheduler(spec, store).run()
        assert first.was_interrupted
        assert len(first.interrupted) == 1
        interrupted_id = first.interrupted[0]
        # The best-so-far outcome was persisted, flagged as interrupted...
        assert store.interrupted_job_ids() == {interrupted_id}
        payload = store.latest_outcomes()[interrupted_id]
        assert payload["interrupted"] and payload["best"]["edp"] > 0
        # ...and is not treated as complete.
        assert interrupted_id not in store.completed_job_ids()

        monkeypatch.setattr(SearchSession, "offer", original_offer)
        second = CampaignScheduler(spec, store).run()
        assert interrupted_id in second.ran and second.complete
        assert CampaignReport.from_store(store).to_text() == baseline_report

    def test_complete_outcomes_backfills_resumed_jobs(self, tmp_path):
        spec = tiny_spec(seeds=(0,))
        store = ResultStore(tmp_path / "s", spec=spec)
        scheduler = CampaignScheduler(spec, store)
        partial = scheduler.run(max_jobs=1)
        with pytest.raises(RuntimeError, match="incomplete"):
            partial.complete_outcomes()
        resumed = scheduler.run()
        outcomes = resumed.complete_outcomes()
        # The job run in the *first* invocation is reloaded from the store.
        assert set(outcomes) == {job.job_id for job in spec.jobs()}
        assert outcomes[partial.ran[0]].best_edp > 0

    def test_worker_mode_store_cannot_write_results(self, tmp_path):
        spec = tiny_spec(seeds=(0,))
        ResultStore(tmp_path / "s", spec=spec)
        reader = ResultStore(tmp_path / "s", writer=False)
        with pytest.raises(RuntimeError, match="worker"):
            reader.append("job", {"interrupted": False})

    def test_run_strategies_helper(self):
        from repro.experiments.common import run_strategies
        outcomes = run_strategies(
            "bert",
            {"dosa": {"num_start_points": 1, "gd_steps": 20,
                      "rounding_period": 10},
             "random": {"num_hardware_designs": 2, "mappings_per_layer": 5}},
            seed=0)
        assert set(outcomes) == {"dosa", "random"}
        assert all(outcome.best_edp > 0 for outcome in outcomes.values())

    def test_max_jobs_and_shards_partition_the_grid(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "s", spec=spec)
        scheduler = CampaignScheduler(spec, store)
        first = scheduler.run(max_jobs=1)
        assert len(first.ran) == 1 and len(first.pending_after) == 3

        shard0 = scheduler.run(shard_index=0, shard_count=2)
        shard1 = scheduler.run(shard_index=1, shard_count=2)
        assert not (set(shard0.ran) & set(shard1.ran))
        assert shard1.complete
        status = scheduler.status()
        assert len(status.completed) == 4 and not status.pending

    def test_scheduler_validation(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "s", spec=spec)
        scheduler = CampaignScheduler(spec, store)
        with pytest.raises(ValueError, match="together"):
            scheduler.run(shard_index=0)
        with pytest.raises(ValueError, match="invalid shard"):
            scheduler.run(shard_index=2, shard_count=2)
        with pytest.raises(ValueError, match="max_jobs"):
            scheduler.run(max_jobs=0)
        with pytest.raises(ValueError, match="n_workers"):
            CampaignScheduler(spec, store, n_workers=0)

    def test_pool_job_failure_is_recorded_not_fatal(self, tmp_path, monkeypatch):
        import repro.campaign.scheduler as scheduler_module
        spec = tiny_spec(seeds=(0,))
        original = scheduler_module.execute_job

        def failing_execute_job(job, cache=None, callbacks=None):
            if job.variant.name == "random":
                raise RuntimeError("no feasible design (simulated)")
            return original(job, cache=cache, callbacks=callbacks)

        # The fork-based pool inherits the patched module state.
        monkeypatch.setattr(scheduler_module, "execute_job", failing_execute_job)
        store = ResultStore(tmp_path / "s", spec=spec)
        run = CampaignScheduler(spec, store, n_workers=2).run()
        assert len(run.failed) == 1
        assert run.failed[0][0] == "bert/random/seed=0/budget=0"
        assert run.ran == ["bert/dosa/seed=0/budget=0"]  # still persisted
        assert not run.complete
        with pytest.raises(RuntimeError, match="1 jobs failed"):
            run.complete_outcomes()
        # The failed job stays pending and re-runs once the failure is gone.
        monkeypatch.setattr(scheduler_module, "execute_job", original)
        resumed = CampaignScheduler(spec, store, n_workers=2).run()
        assert resumed.complete

    def test_worker_pool_matches_inline(self, tmp_path):
        spec = tiny_spec(seeds=(0,))
        inline = ResultStore(tmp_path / "inline", spec=spec)
        CampaignScheduler(spec, inline).run()
        pooled = ResultStore(tmp_path / "pooled", spec=spec)
        run = CampaignScheduler(spec, pooled, n_workers=2).run()
        assert run.complete
        assert (CampaignReport.from_store(pooled).to_text()
                == CampaignReport.from_store(inline).to_text())

    def test_budget_axis_and_cache_spill_do_not_change_results(self, tmp_path):
        budgets = (repro.SearchBudget(max_samples=40), repro.SearchBudget())
        spec = tiny_spec(seeds=(0,), budgets=budgets)
        with_spill = ResultStore(tmp_path / "spill", spec=spec)
        CampaignScheduler(spec, with_spill).run()
        assert with_spill.spilled_entry_count() > 0
        without = ResultStore(tmp_path / "nospill", spec=spec)
        CampaignScheduler(spec, without, persist_cache=False).run()
        assert without.spilled_entry_count() == 0
        assert (CampaignReport.from_store(with_spill).to_text()
                == CampaignReport.from_store(without).to_text())
        # The budgeted job really was capped.
        report = CampaignReport.from_store(without)
        capped = [r for r in report.results if r.budget == "samples<=40"]
        assert capped and all(r.samples <= 40 + 10 for r in capped)


# --------------------------------------------------------------------------- #
# Report determinism
# --------------------------------------------------------------------------- #
class TestReport:
    def test_report_sections_and_determinism(self, tmp_path):
        spec = tiny_spec(seeds=(0,))
        run_campaign(spec, directory=tmp_path / "s")
        report = CampaignReport.from_store(ResultStore(tmp_path / "s"))
        text = report.to_text()
        assert "== campaign tiny ==" in text
        assert "completed 2/2 jobs" in text
        assert "vs dosa" in text  # reference strategy is the first variant
        assert text == CampaignReport.from_store(
            ResultStore(tmp_path / "s")).to_text()
        geomeans = report.geomean_ratios()
        assert geomeans["dosa"] == pytest.approx(1.0)
        assert geomeans["random"] > 0

    def test_partial_report_lists_pending(self, tmp_path):
        spec = tiny_spec(seeds=(0,))
        store = ResultStore(tmp_path / "s", spec=spec)
        CampaignScheduler(spec, store).run(max_jobs=1)
        report = CampaignReport.from_store(store)
        assert len(report.pending) == 1
        assert "pending: 1" in report.to_text()


# --------------------------------------------------------------------------- #
# Interrupted searches (satellite: graceful Ctrl-C)
# --------------------------------------------------------------------------- #
class _InterruptAfter(SearchCallback):
    def __init__(self, candidates):
        self.remaining = candidates

    def on_candidate(self, candidate, samples):
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt


class TestGracefulInterrupt:
    def test_dosa_returns_best_so_far(self):
        outcome = repro.optimize(
            "bert", strategy="dosa",
            settings=repro.DosaSettings(num_start_points=2, gd_steps=40,
                                        rounding_period=10, seed=0),
            callbacks=_InterruptAfter(2))
        assert outcome.interrupted
        assert len(outcome.candidates) == 2 and outcome.best_edp > 0
        restored = outcome_from_dict(outcome_to_dict(outcome))
        assert restored.interrupted and restored.best_edp == outcome.best_edp

    def test_random_returns_best_so_far(self):
        from repro.search.random_search import RandomSearchSettings
        outcome = repro.optimize(
            "bert", strategy="random",
            settings=RandomSearchSettings(num_hardware_designs=4,
                                          mappings_per_layer=5, seed=0),
            callbacks=_InterruptAfter(2))
        assert outcome.interrupted and len(outcome.candidates) == 2

    def test_interrupt_before_any_design_reraises(self):
        with pytest.raises(KeyboardInterrupt):
            repro.optimize(
                "bert", strategy="random",
                settings=__import__("repro.search.random_search",
                                    fromlist=["RandomSearchSettings"])
                .RandomSearchSettings(num_hardware_designs=2,
                                      mappings_per_layer=5, seed=0),
                callbacks=_InterruptAfter(1))

    def test_completed_outcome_not_flagged(self):
        outcome = repro.optimize("bert", strategy="random", seed=0, budget=60)
        assert not outcome.interrupted


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCampaignCli:
    def write_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        tiny_spec(seeds=(0,), name="cli").save(path)
        return str(path)

    def test_run_status_resume_report(self, tmp_path, capsys):
        from repro.cli import main
        spec_path = self.write_spec(tmp_path)
        store = str(tmp_path / "store")

        assert main(["campaign", "run", spec_path, "--dir", store,
                     "--max-jobs", "1"]) == 0
        assert main(["campaign", "status", "--dir", store]) == 0
        assert "1 completed" in capsys.readouterr().out

        assert main(["campaign", "run", spec_path, "--dir", store]) == 0
        out_path = tmp_path / "resumed.txt"
        assert main(["campaign", "report", "--dir", store,
                     "--out", str(out_path)]) == 0

        fresh = str(tmp_path / "fresh")
        assert main(["campaign", "run", spec_path, "--dir", fresh]) == 0
        fresh_path = tmp_path / "fresh.txt"
        assert main(["campaign", "report", "--dir", fresh,
                     "--out", str(fresh_path)]) == 0
        assert out_path.read_bytes() == fresh_path.read_bytes()

    def test_cli_error_paths(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["campaign", "run", str(tmp_path / "missing.json"),
                     "--dir", str(tmp_path / "s")]) == 2
        spec_path = self.write_spec(tmp_path)
        assert main(["campaign", "run", spec_path,
                     "--dir", str(tmp_path / "s"), "--shard", "zero/4"]) == 2
        assert main(["campaign", "status", "--dir", str(tmp_path / "nope")]) == 2
        capsys.readouterr()


# --------------------------------------------------------------------------- #
# Cross-start batched rounding evaluation (satellite: engine batch path)
# --------------------------------------------------------------------------- #
class TestEvaluateNetworkSets:
    def test_pairs_and_sets_bit_identical_to_scalar_paths(self):
        from repro.timeloop.model import evaluate_mapping
        network = get_network("bert")
        sets = []
        for seed in (0, 1, 2):
            hardware = random_hardware_config(seed=seed)
            sets.append(([cosa_mapping(layer, hardware)
                          for layer in network.layers], hardware))

        with EvaluationEngine() as engine:
            batched = engine.evaluate_network_sets(sets)
        for (mappings, hardware), performance in zip(sets, batched):
            with EvaluationEngine() as engine:
                expected = engine.evaluate_network(mappings, hardware)
            assert performance.total_latency == expected.total_latency
            assert performance.total_energy == expected.total_energy
            assert performance.per_layer == expected.per_layer
            for mapping, result in zip(mappings, performance.per_layer):
                assert result == evaluate_mapping(mapping, hardware)

    def test_cross_set_duplicates_on_same_hardware_hit_once(self):
        network = get_network("bert")
        hardware = random_hardware_config(seed=0)
        mappings = [cosa_mapping(layer, hardware) for layer in network.layers]
        with EvaluationEngine() as engine:
            engine.evaluate_network_sets([(mappings, hardware),
                                          (mappings, hardware)])
            assert engine.stats.misses == len(mappings)
            assert engine.stats.hits == len(mappings)
