"""Parity of the layer-batched differentiable model with the per-layer model.

The batched :class:`NetworkFactors` path is a pure performance refactor: loss
values must be *bit-identical* to the per-layer model, per-parameter
gradients must agree to tight tolerance (they differ only in floating-point
accumulation order), and seeded end-to-end DOSA outcomes must match the
per-layer path design-for-design.
"""

import numpy as np
import pytest

import repro
from repro.arch import HardwareConfig
from repro.autodiff import Tape
from repro.core.dmodel import (
    DifferentiableModel,
    LayerFactors,
    NetworkFactors,
    network_edp_loss,
    softmax_ordering_loss,
    validity_penalty,
)
from repro.core.optimizer import DosaSearcher, DosaSettings
from repro.core.optimizer.dosa import LoopOrderingStrategy
from repro.eval.cache import EvaluationCache
from repro.mapping import cosa_mapping
from repro.mapping.mapping import LoopOrdering
from repro.workloads import conv2d_layer, get_network, matmul_layer

CONFIG = HardwareConfig(8, 16, 64)


def _random_start(seed: int):
    """Per-layer factors + the equivalent batched factors on random offsets."""
    layers = [
        conv2d_layer(16, 32, 14, name="conv"),
        matmul_layer(28, 64, 32, name="matmul"),
        conv2d_layer(3, 16, 28, stride=2, name="strided"),
    ]
    rng = np.random.default_rng(seed)
    per_layer = [LayerFactors.from_mapping(cosa_mapping(l, CONFIG)) for l in layers]
    for factors in per_layer:
        factors.log_temporal.data = factors.log_temporal.data + rng.uniform(
            0.05, 0.3, factors.log_temporal.data.shape)
        factors.log_spatial.data = factors.log_spatial.data + rng.uniform(
            0.05, 0.3, factors.log_spatial.data.shape)
    return per_layer, NetworkFactors.from_layer_factors(per_layer), [1, 2, 3]


def _grad_stacks(per_layer):
    temporal = np.stack([
        f.log_temporal.grad if f.log_temporal.grad is not None
        else np.zeros_like(f.log_temporal.data) for f in per_layer])
    spatial = np.stack([
        f.log_spatial.grad if f.log_spatial.grad is not None
        else np.zeros_like(f.log_spatial.data) for f in per_layer])
    return temporal, spatial


def _assert_grads_close(batched, per_layer_stack, label):
    scale = max(np.abs(per_layer_stack).max(), 1e-30)
    np.testing.assert_allclose(batched / scale, per_layer_stack / scale,
                               rtol=0.0, atol=1e-9, err_msg=label)


class TestLossParity:
    @pytest.mark.parametrize("strategy", list(LoopOrderingStrategy))
    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_searcher_loss_and_gradients_match(self, strategy, seed):
        """DosaSearcher._loss parity across every ordering strategy."""
        per_layer, batched, repeats = _random_start(seed)
        searcher = DosaSearcher(
            get_network("bert"),
            settings=DosaSettings(ordering_strategy=strategy, seed=0))
        searcher._repeats = repeats

        loss_per_layer = searcher._loss(per_layer)
        loss_per_layer.backward()
        loss_batched = searcher._loss(batched)
        loss_batched.backward()

        assert float(loss_batched.data) == float(loss_per_layer.data)
        temporal, spatial = _grad_stacks(per_layer)
        _assert_grads_close(batched.log_temporal.grad, temporal,
                            f"temporal grads ({strategy.value}, seed {seed})")
        _assert_grads_close(batched.log_spatial.grad, spatial,
                            f"spatial grads ({strategy.value}, seed {seed})")

    def test_component_losses_bitwise_equal(self):
        per_layer, batched, repeats = _random_start(5)
        hardware = DifferentiableModel.derive_hardware(per_layer)
        performances = DifferentiableModel.evaluate_network(per_layer, hardware)

        hardware_batched = DifferentiableModel.derive_hardware(batched)
        batched_perf = DifferentiableModel.evaluate_network(batched, hardware_batched)

        assert float(hardware_batched.num_pes.data) == float(hardware.num_pes.data)
        assert float(hardware_batched.accumulator_kb.data) == float(hardware.accumulator_kb.data)
        assert float(hardware_batched.scratchpad_kb.data) == float(hardware.scratchpad_kb.data)
        for index, perf in enumerate(performances):
            assert float(batched_perf.latency.data[index]) == float(perf.latency.data)
            assert float(batched_perf.energy.data[index]) == float(perf.energy.data)
        assert (float(network_edp_loss(batched_perf, repeats).data)
                == float(network_edp_loss(performances, repeats).data))
        assert (float(validity_penalty(batched).data)
                == float(validity_penalty(per_layer).data))
        assert (float(softmax_ordering_loss(batched, repeats).data)
                == float(softmax_ordering_loss(per_layer, repeats).data))


class TestNetworkFactors:
    def test_round_trip_through_mappings(self):
        per_layer, batched, _ = _random_start(11)
        snapshots = batched.snapshot_mappings()
        for factors, mapping in zip(per_layer, snapshots):
            reference = factors.snapshot_mapping()
            np.testing.assert_array_equal(mapping.temporal, reference.temporal)
            np.testing.assert_array_equal(mapping.spatial, reference.spatial)
            assert mapping.orderings == reference.orderings

        rounded = batched.rounded_mappings(max_spatial=16)
        reference_rounded = [f.rounded_mapping(max_spatial=16) for f in per_layer]
        for mapping, reference in zip(rounded, reference_rounded):
            np.testing.assert_array_equal(mapping.temporal, reference.temporal)
            np.testing.assert_array_equal(mapping.spatial, reference.spatial)

        batched.load_mappings(rounded)
        for index, factors in enumerate(per_layer):
            factors.load_mapping(reference_rounded[index])
            np.testing.assert_array_equal(batched.log_temporal.data[index],
                                          factors.log_temporal.data)
            np.testing.assert_array_equal(batched.log_spatial.data[index],
                                          factors.log_spatial.data)

    def test_dim_mask_marks_padding_dims(self):
        _, batched, _ = _random_start(0)
        # Layer 1 is the matmul: R = S = Q = 1 are padding columns.
        from repro.workloads.layer import DIMENSIONS
        matmul_mask = dict(zip(DIMENSIONS, batched.dim_mask[1]))
        assert not matmul_mask["R"] and not matmul_mask["S"] and not matmul_mask["Q"]
        assert matmul_mask["P"] and matmul_mask["C"] and matmul_mask["K"]
        # The convolution rows keep their spatial dims active.
        conv_mask = dict(zip(DIMENSIONS, batched.dim_mask[0]))
        assert conv_mask["R"] and conv_mask["P"]

    def test_mismatched_shapes_rejected(self):
        layers = [conv2d_layer(4, 4, 4)]
        with pytest.raises(ValueError):
            NetworkFactors(layers, log_temporal=np.zeros((2, 3, 7)))
        with pytest.raises(ValueError):
            NetworkFactors([])


class TestTapeResnapRegression:
    def test_tape_replay_equals_retrace_after_load_mappings(self):
        """Tape replay == re-traced backward across a rounding-point resnap."""
        _, batched, repeats = _random_start(3)

        def build():
            grid = batched.factor_grid()
            hardware = DifferentiableModel.derive_hardware(batched, grid=grid)
            performances = DifferentiableModel.evaluate_network(
                batched, hardware, grid=grid)
            return (network_edp_loss(performances, repeats)
                    + 1e9 * validity_penalty(batched, grid=grid))

        tape = Tape(build)
        for phase in range(2):
            for _ in range(3):
                for parameter in batched.parameters():
                    parameter.zero_grad()
                loss = tape.forward()
                tape.backward()
                taped = (float(loss.data), batched.log_temporal.grad.copy(),
                         batched.log_spatial.grad.copy())

                for parameter in batched.parameters():
                    parameter.zero_grad()
                retraced = build()
                retraced.backward()
                assert taped[0] == float(retraced.data)
                np.testing.assert_array_equal(taped[1], batched.log_temporal.grad)
                np.testing.assert_array_equal(taped[2], batched.log_spatial.grad)

                # Nudge parameters as an optimizer step would.
                batched.log_temporal.data = batched.log_temporal.data - 1e-3
                batched.log_spatial.data = batched.log_spatial.data + 1e-3

            if phase == 0:
                # Rounding point: snap to valid mappings with *changed*
                # orderings, which invalidates the compiled walk order.
                rounded = [m.with_orderings([LoopOrdering.OUTPUT_STATIONARY] * 4)
                           for m in batched.rounded_mappings(max_spatial=16)]
                batched.load_mappings(rounded)
                tape.invalidate()


class TestEndToEndOutcome:
    def test_seeded_outcomes_match_per_layer_path(self):
        """Same seed => same best design for per-layer, batched, batched+tape."""
        outcomes = {}
        for name, batched_model, use_tape in (("per-layer", False, False),
                                              ("batched", True, False),
                                              ("tape", True, True)):
            settings = DosaSettings(num_start_points=2, gd_steps=36,
                                    rounding_period=12, seed=0,
                                    batched_model=batched_model,
                                    use_tape=use_tape)
            outcomes[name] = repro.optimize("bert", strategy="dosa",
                                            settings=settings)

        reference = outcomes["per-layer"]
        for name in ("batched", "tape"):
            outcome = outcomes[name]
            assert outcome.best_hardware == reference.best_hardware, name
            for ours, theirs in zip(outcome.best_mappings, reference.best_mappings):
                np.testing.assert_array_equal(ours.temporal, theirs.temporal)
                np.testing.assert_array_equal(ours.spatial, theirs.spatial)
                assert ours.orderings == theirs.orderings
            assert outcome.best_edp == pytest.approx(reference.best_edp, rel=1e-9)
            assert outcome.total_samples == reference.total_samples

    def test_shared_cache_across_searches(self):
        """A shared EvaluationCache changes nothing but the hit rate."""
        settings = DosaSettings(num_start_points=1, gd_steps=24,
                                rounding_period=8, seed=1)
        solo = repro.optimize("bert", strategy="dosa", settings=settings)

        cache = EvaluationCache()
        first = repro.optimize("bert", strategy="dosa", settings=settings,
                               cache=cache)
        misses_after_first = cache.stats.misses
        second = repro.optimize("bert", strategy="dosa", settings=settings,
                                cache=cache)
        assert first.best_edp == solo.best_edp
        assert second.best_edp == first.best_edp
        # The repeat run is served entirely from the shared cache.
        assert cache.stats.misses == misses_after_first
        assert cache.stats.hits > 0
