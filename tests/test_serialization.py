"""Tests for design-point serialization (save/load of hardware + mappings)."""

import numpy as np
import pytest

from repro.arch import GemminiSpec, HardwareConfig
from repro.mapping import cosa_mapping
from repro.timeloop import evaluate_network_mappings
from repro.utils.serialization import (
    design_from_dict,
    design_to_dict,
    hardware_from_dict,
    hardware_to_dict,
    load_design,
    save_design,
)
from repro.workloads import conv2d_layer, matmul_layer


@pytest.fixture
def design():
    hardware = HardwareConfig(16, 32, 128)
    layers = [conv2d_layer(64, 64, 28, name="conv", repeats=2),
              matmul_layer(196, 256, 512, name="fc")]
    mappings = [cosa_mapping(layer, hardware) for layer in layers]
    return hardware, mappings


class TestHardwareSerialization:
    def test_roundtrip(self):
        config = HardwareConfig(32, 64, 256)
        assert hardware_from_dict(hardware_to_dict(config)) == config


class TestDesignSerialization:
    def test_dict_roundtrip_preserves_evaluation(self, design):
        hardware, mappings = design
        payload = design_to_dict(hardware, mappings, metadata={"workload": "demo"})
        restored_hw, restored_mappings, metadata = design_from_dict(payload)
        assert restored_hw == hardware
        assert metadata == {"workload": "demo"}
        original = evaluate_network_mappings(mappings, GemminiSpec(hardware))
        restored = evaluate_network_mappings(restored_mappings, GemminiSpec(restored_hw))
        assert restored.edp == pytest.approx(original.edp)
        assert restored_mappings[0].layer.repeats == 2

    def test_file_roundtrip(self, design, tmp_path):
        hardware, mappings = design
        path = save_design(tmp_path / "nested" / "design.json", hardware, mappings)
        assert path.exists()
        restored_hw, restored_mappings, metadata = load_design(path)
        assert restored_hw == hardware
        assert len(restored_mappings) == len(mappings)
        assert metadata == {}
        for original, restored in zip(mappings, restored_mappings):
            assert np.allclose(original.temporal, restored.temporal)
            assert np.allclose(original.spatial, restored.spatial)
            assert original.orderings == restored.orderings
