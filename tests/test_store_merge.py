"""Shard-store merging, spill compaction, and the campaign CLI error paths."""

import json

import pytest

from repro.campaign import (
    CampaignReport,
    CampaignSpec,
    ResultStore,
    StrategyVariant,
    run_campaign,
)
from repro.campaign.store import COMPACTED_SEGMENT
from repro.cli import main as cli_main
from repro.eval.cache import EvaluationCache
from repro.campaign.store import cache_entry_to_dict


def small_spec(name="merge-spec", seeds=(0, 1)):
    """A seconds-scale single-strategy grid on bert (2 jobs by default)."""
    return CampaignSpec(
        name=name,
        workloads=("bert",),
        strategies=(
            StrategyVariant("random", settings={"num_hardware_designs": 2,
                                                "mappings_per_layer": 5}),
        ),
        seeds=seeds,
    )


def report_text(directory) -> str:
    return CampaignReport.from_store(
        ResultStore(directory, create=False)).to_text()


def spill_entries(directory) -> set[str]:
    """Canonical serialization of every spilled cache entry in a store."""
    cache = ResultStore(directory, create=False).load_cache(EvaluationCache())
    return {json.dumps(cache_entry_to_dict(key, result), sort_keys=True)
            for key, result in cache.items()}


# --------------------------------------------------------------------------- #
# ResultStore.merge
# --------------------------------------------------------------------------- #
class TestMerge:
    def test_disjoint_shards_equal_single_run_report_bytes(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, directory=tmp_path / "full")
        run_campaign(spec, directory=tmp_path / "s0",
                     shard_index=0, shard_count=2)
        run_campaign(spec, directory=tmp_path / "s1",
                     shard_index=1, shard_count=2)

        merged, stats = ResultStore.merge(
            tmp_path / "merged", [tmp_path / "s0", tmp_path / "s1"])
        assert stats.jobs_written == spec.grid_size
        assert stats.duplicate_ids == 0
        assert merged.completed_job_ids() == \
            ResultStore(tmp_path / "full").completed_job_ids()
        assert report_text(tmp_path / "merged") == report_text(tmp_path / "full")

    def test_overlapping_shards_resolve_duplicates(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, directory=tmp_path / "full")
        run_campaign(spec, directory=tmp_path / "s0",
                     shard_index=0, shard_count=2)

        # s0 overlaps the full run on one job; the merge must still match
        # the single-run report byte-for-byte (duplicates are bit-identical
        # up to wall time, and the report is deterministic).
        _, stats = ResultStore.merge(
            tmp_path / "merged", [tmp_path / "s0", tmp_path / "full"])
        assert stats.duplicate_ids == 1
        assert report_text(tmp_path / "merged") == report_text(tmp_path / "full")

    def test_merge_order_independent(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, directory=tmp_path / "a",
                     shard_index=0, shard_count=2)
        run_campaign(spec, directory=tmp_path / "b")

        ResultStore.merge(tmp_path / "ab", [tmp_path / "a", tmp_path / "b"])
        ResultStore.merge(tmp_path / "ba", [tmp_path / "b", tmp_path / "a"])
        outcomes_ab = ResultStore(tmp_path / "ab").latest_outcomes()
        outcomes_ba = ResultStore(tmp_path / "ba").latest_outcomes()
        assert outcomes_ab == outcomes_ba
        assert spill_entries(tmp_path / "ab") == spill_entries(tmp_path / "ba")

    def test_completed_beats_interrupted(self, tmp_path):
        spec = small_spec(seeds=(0,))
        run = run_campaign(spec, directory=tmp_path / "done")
        job_id = next(iter(run.outcomes))
        payload = ResultStore(tmp_path / "done").latest_outcomes()[job_id]

        interrupted = dict(payload)
        interrupted["interrupted"] = True
        partial = ResultStore(tmp_path / "partial", spec=spec)
        partial.append(job_id, interrupted)

        merged, _ = ResultStore.merge(
            tmp_path / "merged", [tmp_path / "partial", tmp_path / "done"])
        assert not merged.latest_outcomes()[job_id]["interrupted"]

    def test_merge_refuses_mismatched_specs(self, tmp_path):
        run_campaign(small_spec("one"), directory=tmp_path / "one")
        run_campaign(small_spec("two"), directory=tmp_path / "two")
        with pytest.raises(ValueError, match="spec"):
            ResultStore.merge(tmp_path / "merged",
                              [tmp_path / "one", tmp_path / "two"])

    def test_merge_unions_cache_spill(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, directory=tmp_path / "s0",
                     shard_index=0, shard_count=2)
        run_campaign(spec, directory=tmp_path / "s1",
                     shard_index=1, shard_count=2)
        ResultStore.merge(tmp_path / "merged",
                          [tmp_path / "s0", tmp_path / "s1"])
        assert spill_entries(tmp_path / "merged") == \
            spill_entries(tmp_path / "s0") | spill_entries(tmp_path / "s1")


# --------------------------------------------------------------------------- #
# Spill compaction
# --------------------------------------------------------------------------- #
class TestCompactSpill:
    def test_compaction_reloads_bit_identical(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, directory=tmp_path / "c")
        store = ResultStore(tmp_path / "c")
        before = spill_entries(tmp_path / "c")
        segments_before = len(list(store.cache_dir.glob("*.jsonl")))
        assert segments_before > 1  # one segment per job

        stats = store.compact_spill()
        assert stats.segments_before == segments_before
        remaining = list(store.cache_dir.glob("*.jsonl"))
        assert [p.name for p in remaining] == [COMPACTED_SEGMENT]
        assert spill_entries(tmp_path / "c") == before

    def test_compaction_is_idempotent(self, tmp_path):
        spec = small_spec(seeds=(0,))
        run_campaign(spec, directory=tmp_path / "c")
        store = ResultStore(tmp_path / "c")
        store.compact_spill()
        first = (store.cache_dir / COMPACTED_SEGMENT).read_bytes()
        again = store.compact_spill()
        assert (store.cache_dir / COMPACTED_SEGMENT).read_bytes() == first
        assert again.segments_before == 1


# --------------------------------------------------------------------------- #
# CLI error paths (status/report/compact must not traceback or create dirs)
# --------------------------------------------------------------------------- #
class TestCampaignCLIErrors:
    def test_status_on_missing_dir_is_clean(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        rc = cli_main(["campaign", "status", "--dir", str(missing)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error:" in captured.err
        assert captured.err.count("\n") == 1  # a one-line error
        assert not missing.exists()  # and no store was created as a side effect

    def test_report_on_missing_dir_is_clean(self, tmp_path, capsys):
        rc = cli_main(["campaign", "report", "--dir", str(tmp_path / "nope")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_status_on_partial_store_is_clean(self, tmp_path, capsys):
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "manifest.json").write_text("{not json")
        rc = cli_main(["campaign", "status", "--dir", str(broken)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error:" in captured.err
        assert "Traceback" not in captured.err

    def test_report_on_dir_without_manifest_is_clean(self, tmp_path, capsys):
        not_a_store = tmp_path / "plain"
        not_a_store.mkdir()
        (not_a_store / "README").write_text("just a directory")
        rc = cli_main(["campaign", "report", "--dir", str(not_a_store)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_merge_cli_reports_stats(self, tmp_path, capsys):
        spec = small_spec()
        run_campaign(spec, directory=tmp_path / "a",
                     shard_index=0, shard_count=2)
        run_campaign(spec, directory=tmp_path / "b",
                     shard_index=1, shard_count=2)
        rc = cli_main(["campaign", "merge", str(tmp_path / "a"),
                       str(tmp_path / "b"), "--into", str(tmp_path / "m")])
        captured = capsys.readouterr()
        assert rc == 0
        assert "records written" in captured.out

    def test_log_level_accepted_before_and_after_subcommand(self, tmp_path,
                                                            capsys):
        run_campaign(small_spec(seeds=(0,)), directory=tmp_path / "c")
        for argv in (["--log-level", "error", "campaign", "status",
                      "--dir", str(tmp_path / "c")],
                     ["campaign", "status", "--dir", str(tmp_path / "c"),
                      "--log-level", "error"]):
            assert cli_main(argv) == 0
            assert "completed" in capsys.readouterr().out

    def test_compact_cli(self, tmp_path, capsys):
        run_campaign(small_spec(seeds=(0,)), directory=tmp_path / "c")
        rc = cli_main(["campaign", "compact", "--dir", str(tmp_path / "c")])
        captured = capsys.readouterr()
        assert rc == 0
        assert "segment" in captured.out
