"""Parity of the start-batched (multi-start) model with the sequential path.

The ``(S, L, ...)`` :class:`MultiStartFactors` path is a pure performance
refactor of the DOSA search schedule: start points share no graph nodes, so
per-start losses must be *bit-identical* to single-start batched losses,
per-start gradients must be bitwise equal rows of the stacked gradient, and
seeded end-to-end outcomes with ``batched_starts=True`` must match the
sequential schedule design-for-design across every loop-ordering strategy.
The mask regression covers starts that freeze (stop descending) at different
steps under a binding sample budget.
"""

import numpy as np
import pytest

import repro
from repro.arch import HardwareConfig
from repro.core.dmodel import (
    DifferentiableModel,
    LayerFactors,
    MultiStartFactors,
    NetworkFactors,
    best_ordering_per_layer,
    network_edp_loss,
    softmax_ordering_loss,
    validity_penalty,
)
from repro.core.optimizer import (
    DosaSearcher,
    DosaSettings,
    LoopOrderingStrategy,
    generate_start_points,
    predicted_edp_of_mapping_sets,
    stack_start_points,
)
from repro.mapping import cosa_mapping
from repro.search.api import SearchBudget
from repro.workloads import conv2d_layer, get_network, matmul_layer

CONFIG = HardwareConfig(8, 16, 64)
NUM_STARTS = 3


def _layers():
    return [
        conv2d_layer(16, 32, 14, name="conv"),
        matmul_layer(28, 64, 32, name="matmul"),
    ]


def _random_starts(seed: int, num_starts: int = NUM_STARTS):
    """A multi-start stack plus equivalent per-start NetworkFactors clones."""
    layers = _layers()
    rng = np.random.default_rng(seed)
    mappings = [cosa_mapping(layer, CONFIG) for layer in layers]
    multi = MultiStartFactors.from_mapping_sets([mappings] * num_starts)
    multi.log_temporal.data = multi.log_temporal.data + rng.uniform(
        0.05, 0.3, multi.log_temporal.data.shape)
    multi.log_spatial.data = multi.log_spatial.data + rng.uniform(
        0.05, 0.3, multi.log_spatial.data.shape)
    singles = []
    for start in range(num_starts):
        factors = NetworkFactors.from_mappings(mappings)
        factors.log_temporal.data = multi.log_temporal.data[start].copy()
        factors.log_spatial.data = multi.log_spatial.data[start].copy()
        singles.append(factors)
    return multi, singles, [1, 2]


class TestLossParity:
    def test_per_start_losses_bitwise_equal(self):
        multi, singles, repeats = _random_starts(0)
        grid = multi.factor_grid()
        hardware = DifferentiableModel.derive_hardware(multi, grid=grid)
        performances = DifferentiableModel.evaluate_network(multi, hardware,
                                                            grid=grid)
        edps = network_edp_loss(performances, repeats)
        penalties = validity_penalty(multi, grid=grid)
        softmaxes = softmax_ordering_loss(multi, repeats)
        assert edps.shape == (NUM_STARTS,)
        for start, factors in enumerate(singles):
            single_grid = factors.factor_grid()
            single_hw = DifferentiableModel.derive_hardware(factors, grid=single_grid)
            perf = DifferentiableModel.evaluate_network(factors, single_hw,
                                                        grid=single_grid)
            assert float(edps.data[start]) == float(
                network_edp_loss(perf, repeats).data)
            assert float(penalties.data[start]) == float(
                validity_penalty(factors, grid=single_grid).data)
            assert float(softmaxes.data[start]) == float(
                softmax_ordering_loss(factors, repeats).data)

    @pytest.mark.parametrize("strategy", list(LoopOrderingStrategy))
    def test_searcher_loss_gradients_match_per_start(self, strategy):
        """Each row of the stacked gradient == that start's own gradient."""
        multi, singles, repeats = _random_starts(7)
        searcher = DosaSearcher(
            get_network("bert"),
            settings=DosaSettings(ordering_strategy=strategy, seed=0))
        searcher._repeats = repeats

        searcher._loss(multi).backward()
        for start, factors in enumerate(singles):
            searcher._loss(factors).backward()
            np.testing.assert_array_equal(multi.log_temporal.grad[start],
                                          factors.log_temporal.grad)
            np.testing.assert_array_equal(multi.log_spatial.grad[start],
                                          factors.log_spatial.grad)


class TestActiveMask:
    def test_frozen_starts_get_exactly_zero_gradients(self):
        multi, _, repeats = _random_starts(3)
        searcher = DosaSearcher(get_network("bert"),
                                settings=DosaSettings(seed=0))
        searcher._repeats = repeats

        searcher._loss(multi).backward()
        unmasked_t = multi.log_temporal.grad.copy()
        unmasked_s = multi.log_spatial.grad.copy()

        for parameter in multi.parameters():
            parameter.zero_grad()
        active = np.array([True, False, True])
        searcher._loss(multi, active=active).backward()
        # Masked-out start: exactly zero gradient (it must not drift the
        # frozen descent); active starts: bitwise the unmasked gradient.
        np.testing.assert_array_equal(multi.log_temporal.grad[1],
                                      np.zeros_like(unmasked_t[1]))
        np.testing.assert_array_equal(multi.log_spatial.grad[1],
                                      np.zeros_like(unmasked_s[1]))
        for start in (0, 2):
            np.testing.assert_array_equal(multi.log_temporal.grad[start],
                                          unmasked_t[start])
            np.testing.assert_array_equal(multi.log_spatial.grad[start],
                                          unmasked_s[start])

    def test_budget_freezes_trailing_starts_mid_descent(self):
        """A binding sample budget narrows the batch instead of crashing.

        With 3 starts, 40 steps and rounding every 8 steps, a 50-sample cap
        exhausts mid-descent: trailing starts freeze (terminate at different
        steps), leading starts keep descending, and the outcome stays
        feasible with paper-consistent sample accounting.
        """
        settings = DosaSettings(num_start_points=3, gd_steps=40,
                                rounding_period=8, seed=0)
        searcher = DosaSearcher(get_network("bert"), settings)
        outcome = searcher.search(budget=SearchBudget(max_samples=50))
        layer_count = len(get_network("bert").layers)
        assert outcome.best_edp > 0
        assert len(outcome.candidates) >= 1
        # Overshoot is bounded by the in-flight rounding evaluations: at most
        # one reference evaluation (layer_count samples) per start.
        assert outcome.total_samples <= 50 + settings.num_start_points * layer_count
        assert outcome.best_edp == pytest.approx(
            min(candidate.edp for candidate in outcome.candidates))

    def test_exhausted_budget_between_steps_still_offers_candidates(self):
        """Exhaustion exactly at a step boundary ends with a final rounding."""
        settings = DosaSettings(num_start_points=2, gd_steps=30,
                                rounding_period=10, seed=1)
        searcher = DosaSearcher(get_network("bert"), settings)
        outcome = searcher.search(budget=SearchBudget(max_samples=2 * 10))
        assert len(outcome.candidates) >= 1


class TestMultiStartFactors:
    def test_snapshots_match_per_start_network_factors(self):
        multi, singles, _ = _random_starts(11)
        for start, factors in enumerate(singles):
            reference = factors.snapshot_mappings()
            snapshot = multi.snapshot_mappings_of(start)
            for ours, theirs in zip(snapshot, reference):
                np.testing.assert_array_equal(ours.temporal, theirs.temporal)
                np.testing.assert_array_equal(ours.spatial, theirs.spatial)
                assert ours.orderings == theirs.orderings
            rounded = multi.rounded_mappings_of(start, max_spatial=16)
            reference_rounded = factors.rounded_mappings(max_spatial=16)
            for ours, theirs in zip(rounded, reference_rounded):
                np.testing.assert_array_equal(ours.temporal, theirs.temporal)
                np.testing.assert_array_equal(ours.spatial, theirs.spatial)

    def test_load_mapping_sets_updates_only_given_starts(self):
        multi, _, _ = _random_starts(2)
        before_t = multi.log_temporal.data.copy()
        before_s = multi.log_spatial.data.copy()
        rounded = multi.rounded_mappings_of(1, max_spatial=16)
        multi.load_mapping_sets({1: rounded})
        # Start 1 snapped onto the rounded mapping, starts 0/2 untouched.
        reference = NetworkFactors.from_mappings(rounded)
        np.testing.assert_array_equal(multi.log_temporal.data[1],
                                      reference.log_temporal.data)
        for start in (0, 2):
            np.testing.assert_array_equal(multi.log_temporal.data[start],
                                          before_t[start])
            np.testing.assert_array_equal(multi.log_spatial.data[start],
                                          before_s[start])

    def test_dim_mask_broadcasts_layer_mask_over_starts(self):
        multi, _, _ = _random_starts(0)
        assert multi.dim_mask.shape == (NUM_STARTS, 2, multi.dim_sizes.shape[1])
        for start in range(NUM_STARTS):
            np.testing.assert_array_equal(multi.dim_mask[start],
                                          multi.dim_sizes > 1.0)

    def test_single_start_accessors_are_guarded(self):
        multi, _, _ = _random_starts(0)
        with pytest.raises(TypeError):
            multi.snapshot_mappings()
        with pytest.raises(TypeError):
            multi.rounded_mappings()
        with pytest.raises(TypeError):
            multi.load_mappings([])

    def test_shape_validation(self):
        layers = _layers()
        with pytest.raises(ValueError):
            MultiStartFactors(layers, num_starts=0)
        with pytest.raises(ValueError):
            MultiStartFactors([], num_starts=2)
        with pytest.raises(ValueError):
            MultiStartFactors(layers, num_starts=2,
                              log_temporal=np.zeros((3, 2, 3, 7)))
        with pytest.raises(ValueError):
            MultiStartFactors.from_mapping_sets([])


class TestStartPointBatching:
    def test_predicted_edp_of_mapping_sets_matches_per_layer_model(self):
        network = get_network("bert")
        repeats = [layer.repeats for layer in network.layers]
        points = generate_start_points(network, count=3, seed=0)
        batched = predicted_edp_of_mapping_sets(
            [point.mappings for point in points], repeats)
        assert batched.shape == (3,)
        for start, point in enumerate(points):
            per_layer = [LayerFactors.from_mapping(m) for m in point.mappings]
            hardware = DifferentiableModel.derive_hardware(per_layer)
            performances = DifferentiableModel.evaluate_network(per_layer, hardware)
            assert float(batched[start]) == float(
                network_edp_loss(performances, repeats).data)
            assert float(batched[start]) == point.predicted_edp

    def test_stack_start_points(self):
        network = get_network("bert")
        points = generate_start_points(network, count=2, seed=3)
        stacked = stack_start_points(points)
        assert stacked.num_starts == 2
        assert stacked.layers == [m.layer for m in points[0].mappings]
        for start, point in enumerate(points):
            reference = NetworkFactors.from_mappings(point.mappings)
            np.testing.assert_array_equal(stacked.log_temporal.data[start],
                                          reference.log_temporal.data)


class TestMultiStartGradcheck:
    """Finite-difference check of the stacked (S, L, ...) losses."""

    @staticmethod
    def _numeric_gradient(loss_fn, parameter, eps=1e-5):
        grad = np.zeros_like(parameter.data)
        flat = parameter.data.reshape(-1)
        grad_flat = grad.reshape(-1)
        for index in range(flat.size):
            original = flat[index]
            flat[index] = original + eps
            plus = float(loss_fn().data)
            flat[index] = original - eps
            minus = float(loss_fn().data)
            flat[index] = original
            grad_flat[index] = (plus - minus) / (2 * eps)
        return grad

    def _check(self, multi, loss_fn, rtol=2e-3, atol=1e-2):
        for parameter in multi.parameters():
            parameter.zero_grad()
        loss = loss_fn()
        loss.backward()
        scale = max(abs(float(loss.data)), 1.0)
        for parameter in multi.parameters():
            analytic = parameter.grad
            numeric = self._numeric_gradient(loss_fn, parameter)
            assert np.allclose(analytic / scale, numeric / scale,
                               rtol=rtol, atol=atol), (
                f"gradient mismatch for {parameter.name}")

    def test_stacked_edp_loss_with_penalty(self):
        from repro.autodiff import ops

        multi, _, repeats = _random_starts(5, num_starts=2)

        def loss_fn():
            grid = multi.factor_grid()
            hardware = DifferentiableModel.derive_hardware(multi, grid=grid)
            performances = DifferentiableModel.evaluate_network(multi, hardware,
                                                                grid=grid)
            per_start = (network_edp_loss(performances, repeats)
                         + 1e6 * validity_penalty(multi, grid=grid))
            return ops.fold_sum(per_start)

        self._check(multi, loss_fn)

    def test_stacked_softmax_ordering_loss(self):
        from repro.autodiff import ops

        multi, _, repeats = _random_starts(9, num_starts=2)

        def loss_fn():
            return ops.fold_sum(softmax_ordering_loss(multi, repeats))

        self._check(multi, loss_fn)


class TestEndToEndOutcome:
    @pytest.mark.parametrize("strategy", list(LoopOrderingStrategy))
    def test_seeded_outcomes_match_sequential_path(self, strategy):
        """Same seed => same best design, batched starts vs sequential."""
        outcomes = {}
        for batched_starts in (False, True):
            settings = DosaSettings(num_start_points=2, gd_steps=24,
                                    rounding_period=8, seed=0,
                                    batched_starts=batched_starts,
                                    ordering_strategy=strategy)
            outcomes[batched_starts] = repro.optimize("bert", strategy="dosa",
                                                      settings=settings)
        sequential, batched = outcomes[False], outcomes[True]
        assert batched.best_hardware == sequential.best_hardware
        for ours, theirs in zip(batched.best_mappings, sequential.best_mappings):
            np.testing.assert_array_equal(ours.temporal, theirs.temporal)
            np.testing.assert_array_equal(ours.spatial, theirs.spatial)
            assert ours.orderings == theirs.orderings
        assert batched.best_edp == sequential.best_edp
        assert batched.total_samples == sequential.total_samples
        # Same candidate designs are discovered; only the discovery order
        # (grouped by rounding point vs by start point) may differ.
        assert len(batched.candidates) == len(sequential.candidates)
        assert (sorted(candidate.edp for candidate in batched.candidates)
                == sorted(candidate.edp for candidate in sequential.candidates))


class TestBatchedRoundingWalk:
    """The vectorized rounding point against the scalar per-start walk."""

    def test_rounded_mapping_sets_match_per_start_walks(self):
        multi, _, _ = _random_starts(5)
        batched_sets = multi.rounded_mapping_sets(max_spatial=16)
        for start, rounded_set in enumerate(batched_sets):
            reference = multi.rounded_mappings_of(start, max_spatial=16)
            for ours, theirs in zip(rounded_set, reference):
                np.testing.assert_array_equal(ours.temporal, theirs.temporal)
                np.testing.assert_array_equal(ours.spatial, theirs.spatial)
                assert ours.orderings == theirs.orderings

    def test_rounded_mapping_sets_selects_starts(self):
        multi, _, _ = _random_starts(6)
        subset = multi.rounded_mapping_sets(starts=[2, 0], max_spatial=16)
        assert len(subset) == 2
        for rounded_set, start in zip(subset, (2, 0)):
            reference = multi.rounded_mappings_of(start, max_spatial=16)
            for ours, theirs in zip(rounded_set, reference):
                np.testing.assert_array_equal(ours.temporal, theirs.temporal)
        with pytest.raises(ValueError):
            multi.rounded_mapping_sets(starts=[NUM_STARTS])

    def test_batched_reselection_matches_per_start(self):
        """One (3, S, L) ordering pass decides exactly like S (3, L) passes."""
        multi, _, _ = _random_starts(9)
        rounded_sets = multi.rounded_mapping_sets(max_spatial=16)
        batched = best_ordering_per_layer(
            MultiStartFactors.from_mapping_sets(rounded_sets))
        per_start = [
            best_ordering_per_layer(NetworkFactors.from_mappings(rounded))
            for rounded in rounded_sets
        ]
        assert batched == per_start

    @pytest.mark.parametrize("strategy", list(LoopOrderingStrategy))
    @pytest.mark.parametrize("batched_starts", [False, True])
    def test_seeded_outcomes_match_scalar_walk(self, strategy, batched_starts):
        """Same seed => design-identical outcome, kernel walk vs scalar walk."""
        outcomes = {}
        for batched_rounding in (False, True):
            settings = DosaSettings(num_start_points=2, gd_steps=24,
                                    rounding_period=8, seed=0,
                                    batched_starts=batched_starts,
                                    batched_rounding=batched_rounding,
                                    ordering_strategy=strategy)
            outcomes[batched_rounding] = repro.optimize(
                "bert", strategy="dosa", settings=settings)
        scalar, batched = outcomes[False], outcomes[True]
        assert batched.best_hardware == scalar.best_hardware
        for ours, theirs in zip(batched.best_mappings, scalar.best_mappings):
            np.testing.assert_array_equal(ours.temporal, theirs.temporal)
            np.testing.assert_array_equal(ours.spatial, theirs.spatial)
            assert ours.orderings == theirs.orderings
        assert batched.best_edp == scalar.best_edp
        assert batched.total_samples == scalar.total_samples
        # The walk changes no scheduling, only its implementation: with the
        # same batched_starts setting the candidate *order* is identical too.
        assert ([candidate.edp for candidate in batched.candidates]
                == [candidate.edp for candidate in scalar.candidates])
