"""Tests for the unified search API: registry, budget, callbacks, outcomes."""

import pytest

from repro.arch.config import DEFAULT_BOUNDS, HardwareConfig
from repro.core.optimizer import DosaSearcher, DosaSettings
from repro.search import (
    BayesianSearcher,
    FixedHardwareMapperSearcher,
    RandomSearcher,
    RandomSearchSettings,
)
from repro.search.api import (
    CandidateDesign,
    SearchBudget,
    SearchCallback,
    Searcher,
    SearchOutcome,
    SearchTrace,
    available_strategies,
    create_searcher,
    get_searcher,
    optimize,
    register_searcher,
)
from repro.utils.serialization import (
    load_outcome,
    outcome_from_dict,
    outcome_to_dict,
    save_outcome,
)
from repro.workloads.layer import conv2d_layer, matmul_layer
from repro.workloads.networks import Network


def tiny_network() -> Network:
    return Network(name="tiny", layers=[
        conv2d_layer(32, 64, 14, name="conv"),
        matmul_layer(64, 128, 256, name="fc"),
    ])


class TestRegistry:
    def test_builtin_strategies_registered(self):
        strategies = available_strategies()
        for name in ("dosa", "random", "bayesian", "fixed_hw_random"):
            assert name in strategies

    def test_get_searcher_roundtrip(self):
        assert get_searcher("dosa") is DosaSearcher
        assert get_searcher("random") is RandomSearcher
        assert get_searcher("bayesian") is BayesianSearcher
        assert get_searcher("fixed_hw_random") is FixedHardwareMapperSearcher

    def test_unknown_strategy_raises_with_options(self):
        with pytest.raises(KeyError, match="unknown search strategy"):
            get_searcher("annealing")
        with pytest.raises(KeyError, match="dosa"):
            get_searcher("annealing")

    def test_register_and_use_custom_strategy(self):
        @register_searcher("_test_stub")
        class StubSearcher:
            def __init__(self, network, settings=None):
                self.network = network

            def search(self, budget=None, callbacks=None):
                raise NotImplementedError

        try:
            assert get_searcher("_test_stub") is StubSearcher
            assert "_test_stub" in available_strategies()
            assert isinstance(create_searcher("_test_stub", tiny_network()), Searcher)
        finally:
            from repro.search import api
            del api._SEARCHERS["_test_stub"]

    def test_searchers_satisfy_protocol(self):
        assert isinstance(RandomSearcher(tiny_network()), Searcher)
        assert isinstance(DosaSearcher(tiny_network()), Searcher)


class TestSearchBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            SearchBudget(max_samples=0)
        with pytest.raises(ValueError):
            SearchBudget(max_seconds=-1.0)

    def test_exhaustion(self):
        budget = SearchBudget(max_samples=10, max_seconds=60.0)
        assert not budget.exhausted(9, 0.0)
        assert budget.exhausted(10, 0.0)
        assert budget.exhausted(0, 60.0)
        assert SearchBudget().unlimited
        assert not SearchBudget().exhausted(10**9, 10**9)

    def test_coerce(self):
        assert SearchBudget.coerce(None).unlimited
        assert SearchBudget.coerce(25).max_samples == 25
        budget = SearchBudget(max_seconds=1.0)
        assert SearchBudget.coerce(budget) is budget
        with pytest.raises(TypeError):
            SearchBudget.coerce("lots")

    def test_random_search_stops_within_budget(self):
        settings = RandomSearchSettings(num_hardware_designs=8, mappings_per_layer=20,
                                        seed=0)
        outcome = RandomSearcher(tiny_network(), settings).search(budget=30)
        # The first design is always completed (one in-flight evaluation per
        # layer may finish), after which the cap is strict.
        assert outcome.total_samples <= 30 + len(tiny_network().layers)
        assert outcome.best_edp > 0

    def test_dosa_search_stops_within_budget(self):
        network = tiny_network()
        settings = DosaSettings(num_start_points=3, gd_steps=500, rounding_period=250,
                                seed=0)
        outcome = DosaSearcher(network, settings).search(budget=40)
        # One in-flight reference evaluation (one sample per layer) may finish.
        assert outcome.total_samples <= 40 + len(network.layers)
        assert outcome.best_edp > 0
        # Without the budget the same settings would spend far more samples.
        assert settings.num_start_points * settings.gd_steps > 100

    def test_dosa_budget_holds_when_periodic_rounding_crosses_it(self):
        # Regression: a periodic rounding whose reference samples cross the
        # budget must end the run, not allow one more step + rounding.
        network = tiny_network()
        settings = DosaSettings(num_start_points=1, gd_steps=200, rounding_period=50,
                                seed=0)
        outcome = DosaSearcher(network, settings).search(budget=51)
        assert outcome.total_samples <= 51 + len(network.layers)

    def test_budget_shrinks_sample_usage(self):
        settings = DosaSettings(num_start_points=2, gd_steps=60, rounding_period=30,
                                seed=0)
        unbounded = DosaSearcher(tiny_network(), settings).search()
        bounded = DosaSearcher(tiny_network(), settings).search(budget=20)
        assert bounded.total_samples < unbounded.total_samples


class TestCallbacks:
    def make_recorder(self):
        events = []

        class Recorder(SearchCallback):
            def on_step(self, samples):
                events.append(("step", samples, None))

            def on_candidate(self, candidate, samples):
                events.append(("candidate", samples, candidate))

            def on_best(self, candidate, samples):
                events.append(("best", samples, candidate))

        return Recorder(), events

    def test_invocation_order_and_counts(self):
        recorder, events = self.make_recorder()
        settings = RandomSearchSettings(num_hardware_designs=3, mappings_per_layer=10,
                                        seed=0)
        outcome = RandomSearcher(tiny_network(), settings).search(callbacks=recorder)

        kinds = [kind for kind, _, _ in events]
        assert kinds.count("step") == outcome.total_samples
        assert kinds.count("candidate") == len(outcome.candidates)
        assert kinds.count("best") >= 1

        # Sample counts are non-decreasing over the event stream.
        counts = [samples for _, samples, _ in events]
        assert counts == sorted(counts)

        # Every on_best immediately follows the on_candidate for that design.
        for index, (kind, samples, candidate) in enumerate(events):
            if kind == "best":
                previous = events[index - 1]
                assert previous[0] == "candidate"
                assert previous[2] is candidate

        # The first evaluated candidate is always a "best"; the last best is
        # the outcome's best design.
        bests = [candidate for kind, _, candidate in events if kind == "best"]
        assert bests[-1] is outcome.best

    def test_multiple_callbacks_and_dosa_hooks(self):
        first, first_events = self.make_recorder()
        second, second_events = self.make_recorder()
        settings = DosaSettings(num_start_points=1, gd_steps=20, rounding_period=10,
                                seed=0)
        outcome = DosaSearcher(tiny_network(), settings).search(
            callbacks=[first, second])
        assert first_events == second_events
        assert [k for k, _, _ in first_events].count("candidate") == len(outcome.candidates)


class TestSearchTrace:
    def test_monotone_by_construction(self):
        trace = SearchTrace()
        trace.record(1, 10.0)
        trace.record(2, 20.0)   # regression is clamped to the running best
        trace.record(3, 5.0)
        assert [p.best_edp for p in trace.points] == [10.0, 10.0, 5.0]
        assert trace.best_edp_after(2) == 10.0
        assert trace.best_after(2) == 10.0
        assert trace.final_best == 5.0
        assert trace.total_samples == 3
        assert trace.as_pairs() == [(1, 10.0), (2, 10.0), (3, 5.0)]

    def test_empty_trace(self):
        trace = SearchTrace()
        assert trace.final_best == float("inf")
        assert trace.total_samples == 0
        assert trace.best_edp_after(100) == float("inf")

    def test_every_strategy_trace_is_monotone(self):
        tolerance = 1 + 1e-12
        outcomes = [
            optimize(tiny_network(), "random",
                     settings=RandomSearchSettings(3, 10, seed=1)),
            optimize(tiny_network(), "dosa",
                     settings=DosaSettings(num_start_points=2, gd_steps=40,
                                           rounding_period=20, seed=1)),
        ]
        for outcome in outcomes:
            values = [p.best_edp for p in outcome.trace.points]
            assert values, outcome.method
            assert all(later <= earlier * tolerance
                       for earlier, later in zip(values, values[1:])), outcome.method
            assert outcome.trace.final_best == pytest.approx(outcome.best_edp)

    def test_dict_roundtrip(self):
        trace = SearchTrace()
        trace.record(5, 2.0)
        trace.record(9, 1.0)
        restored = SearchTrace.from_dict(trace.to_dict())
        assert restored.as_pairs() == trace.as_pairs()


class TestOptimizeFacade:
    def test_accepts_network_name(self):
        outcome = optimize("bert", strategy="random",
                           settings=RandomSearchSettings(1, 5, seed=0))
        assert outcome.network == "bert"
        assert outcome.method == "random"

    def test_seed_reproducibility(self):
        first = optimize(tiny_network(), "random", budget=60, seed=3)
        second = optimize(tiny_network(), "random", budget=60, seed=3)
        assert first.best_edp == second.best_edp
        assert first.trace.as_pairs() == second.trace.as_pairs()

    def test_settings_and_seed_conflict_raises(self):
        with pytest.raises(TypeError, match="not both"):
            optimize(tiny_network(), "random",
                     settings=RandomSearchSettings(1, 5, seed=0), seed=1)

    def test_fixed_hardware_strategy_kwargs(self):
        hardware = HardwareConfig(16, 32, 128)
        outcome = optimize(tiny_network(), "fixed_hw_random", seed=0,
                           hardware=hardware, budget=30)
        assert outcome.best_hardware == hardware
        assert len(outcome.best_mappings) == 2

    def test_all_cosearch_strategies_share_outcome_shape(self):
        from repro.search.bayesian import BayesianSettings

        settings = {
            "dosa": DosaSettings(num_start_points=1, gd_steps=20, rounding_period=10,
                                 seed=0),
            "random": RandomSearchSettings(2, 8, seed=0),
            "bayesian": BayesianSettings(num_training_hardware=2, mappings_per_layer=5,
                                         num_candidates=3,
                                         candidate_mappings_per_layer=3, seed=0),
        }
        for strategy, strategy_settings in settings.items():
            outcome = optimize(tiny_network(), strategy, settings=strategy_settings)
            assert isinstance(outcome, SearchOutcome)
            assert outcome.method == strategy
            assert isinstance(outcome.best, CandidateDesign)
            assert outcome.best_edp > 0
            assert outcome.trace.total_samples > 0
            assert outcome.wall_time_seconds > 0
            assert outcome.settings["seed"] == 0


class TestDosaSettingsBounds:
    def test_default_bounds_are_fresh_copies(self):
        first = DosaSettings()
        second = DosaSettings()
        assert first.bounds == DEFAULT_BOUNDS
        assert first.bounds is not second.bounds
        assert first.bounds is not DEFAULT_BOUNDS


class TestOutcomeSerialization:
    @pytest.fixture(scope="class")
    def outcome(self):
        settings = DosaSettings(num_start_points=1, gd_steps=20, rounding_period=10,
                                seed=0)
        return DosaSearcher(tiny_network(), settings).search()

    def test_dict_roundtrip(self, outcome):
        restored = outcome_from_dict(outcome_to_dict(outcome))
        assert restored.method == outcome.method
        assert restored.network == outcome.network
        assert restored.best_edp == pytest.approx(outcome.best_edp)
        assert restored.best_hardware == outcome.best_hardware
        assert restored.trace.as_pairs() == outcome.trace.as_pairs()
        assert restored.settings == outcome.settings
        assert restored.seed == 0

    def test_file_roundtrip(self, outcome, tmp_path):
        path = save_outcome(tmp_path / "nested" / "outcome.json", outcome)
        assert path.exists()
        restored = load_outcome(path)
        assert restored.best_edp == pytest.approx(outcome.best_edp)
        assert len(restored.best_mappings) == len(outcome.best_mappings)
        # Mappings survive well enough to re-evaluate identically.
        from repro.arch import GemminiSpec
        from repro.timeloop import evaluate_network_mappings

        re_evaluated = evaluate_network_mappings(restored.best_mappings,
                                                 GemminiSpec(restored.best_hardware))
        assert re_evaluated.edp == pytest.approx(outcome.best.performance.edp)

    def test_settings_snapshot_is_json_safe(self, outcome):
        import json

        payload = json.dumps(outcome_to_dict(outcome))
        assert "ordering_strategy" in payload

    def test_reserialization_is_lossless(self, outcome):
        # Candidate *objects* are not persisted, but serialize -> rebuild ->
        # serialize must reproduce the payload byte-for-byte — in particular
        # num_candidates, which a rebuilt outcome carries via
        # serialized_candidate_count rather than len(candidates).
        payload = outcome_to_dict(outcome)
        restored = outcome_from_dict(payload)
        assert restored.candidates == []
        assert restored.num_candidates == outcome.num_candidates
        assert restored.num_candidates == payload["num_candidates"]
        assert outcome_to_dict(restored) == payload
