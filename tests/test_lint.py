"""Tests for repro-lint: the AST-based invariant checker (repro.analysis).

Three layers:

* per-checker fixture snippets — a positive case, a suppressed case, and an
  allowlisted/clean case per rule, run through :func:`run_lint` on a
  synthetic package tree,
* the machinery — suppression hygiene, the baseline add/remove round trip
  (driven through the real CLI), reporters and the rule catalog,
* the repo itself — ``repro.cli lint`` must exit 0 on this repository with
  the shipped (empty) baseline, and the two historical bug classes the
  linter exists for must still be *detected* when re-introduced (mutation
  regressions).
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rule_ids, get_checker, rule_catalog
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import run_lint
from repro.cli import main


def lint_tree(tmp_path: Path, files: dict[str, str],
              rules: list[str] | None = None):
    """Write ``files`` under a synthetic package and lint it (no baseline)."""
    pkg = tmp_path / "pkg"
    for relpath, text in files.items():
        path = pkg / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return run_lint(package_dir=pkg, rules=rules, use_baseline=False)


def by_rule(result, rule: str) -> list[Finding]:
    return [f for f in result.findings if f.rule == rule]


class TestDeterminismRng:
    def test_global_numpy_rng_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"search/s.py": """\
            import numpy as np

            def draw():
                return np.random.rand()
        """}, rules=["determinism-rng"])
        (finding,) = by_rule(result, "determinism-rng")
        assert "numpy" in finding.message
        assert finding.line == 4

    def test_stdlib_random_flagged_and_zone_scoped(self, tmp_path):
        files = {
            "search/s.py": "import random\nx = random.choice([1, 2])\n",
            # Same code outside a deterministic zone: not flagged.
            "viz/v.py": "import random\nx = random.choice([1, 2])\n",
        }
        result = lint_tree(tmp_path, files, rules=["determinism-rng"])
        (finding,) = by_rule(result, "determinism-rng")
        assert finding.path.endswith("search/s.py")

    def test_seeded_generator_and_locals_clean(self, tmp_path):
        result = lint_tree(tmp_path, {"search/s.py": """\
            import numpy as np

            def draw(rng: np.random.Generator):
                random = object()          # local named like the module
                return rng.random()        # explicit generator: fine
        """}, rules=["determinism-rng"])
        assert by_rule(result, "determinism-rng") == []

    def test_suppressed_with_reason(self, tmp_path):
        result = lint_tree(tmp_path, {"search/s.py": """\
            import random
            x = random.random()  # repro-lint: allow[determinism-rng] demo value, not a result
        """}, rules=["determinism-rng"])
        assert result.findings == []
        assert result.suppressed == 1


class TestDeterminismClock:
    def test_time_time_flagged_also_as_reference(self, tmp_path):
        result = lint_tree(tmp_path, {"campaign/c.py": """\
            import time
            from dataclasses import dataclass, field

            @dataclass
            class Record:
                created: float = field(default_factory=time.time)

            def stamp():
                return time.time()
        """}, rules=["determinism-clock"])
        lines = sorted(f.line for f in by_rule(result, "determinism-clock"))
        assert lines == [6, 9]  # the default_factory reference AND the call

    def test_monotonic_is_exempt(self, tmp_path):
        result = lint_tree(tmp_path, {"search/s.py": """\
            import time
            elapsed = time.monotonic()
        """}, rules=["determinism-clock"])
        assert result.findings == []


class TestDeterminismListdir:
    def test_unsorted_listing_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"campaign/c.py": """\
            import os
            from pathlib import Path

            def entries(d: Path):
                for name in os.listdir(d):
                    yield name
                for p in d.glob("*.json"):
                    yield p
        """}, rules=["determinism-listdir"])
        assert len(by_rule(result, "determinism-listdir")) == 2

    def test_sorted_wrapping_clean(self, tmp_path):
        result = lint_tree(tmp_path, {"campaign/c.py": """\
            import os
            from pathlib import Path

            def entries(d: Path):
                return sorted(os.listdir(d)) + sorted(d.glob("*.json"))
        """}, rules=["determinism-listdir"])
        assert result.findings == []


class TestSerdeParity:
    def test_written_but_never_read_key_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"m.py": """\
            class Thing:
                def to_dict(self):
                    return {"a": self.a, "count": len(self.items),
                            "nested": {"b": self.b}}

                @staticmethod
                def from_dict(payload):
                    thing = Thing()
                    thing.a = payload["a"]
                    thing.b = payload["nested"]["b"]
                    return thing
        """}, rules=["serde-parity"])
        (finding,) = by_rule(result, "serde-parity")
        assert "'count'" in finding.message

    def test_get_pop_and_membership_count_as_reads(self, tmp_path):
        result = lint_tree(tmp_path, {"m.py": """\
            def thing_to_dict(thing):
                return {"a": thing.a, "b": thing.b, "c": thing.c}

            def thing_from_dict(payload):
                has = "c" in payload
                return (payload.get("a"), payload.pop("b"), has)
        """}, rules=["serde-parity"])
        assert result.findings == []

    def test_unpaired_writer_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {"m.py": """\
            class ReportOnly:
                def to_dict(self):
                    return {"write_only": 1}
        """}, rules=["serde-parity"])
        assert result.findings == []

    def test_suppressed_derived_field(self, tmp_path):
        result = lint_tree(tmp_path, {"m.py": """\
            class Thing:
                def to_dict(self):
                    return {
                        "a": self.a,
                        # repro-lint: allow[serde-parity] derived from a; recomputed on load
                        "a_squared": self.a ** 2,
                    }

                @staticmethod
                def from_dict(payload):
                    thing = Thing()
                    thing.a = payload["a"]
                    return thing
        """}, rules=["serde-parity"])
        assert result.findings == []
        assert result.suppressed == 1


class TestAtomicIo:
    def test_truncating_writes_flagged_in_persisting_zones(self, tmp_path):
        result = lint_tree(tmp_path, {"campaign/c.py": """\
            from pathlib import Path

            def save(path: Path, text: str):
                with open(path, "w") as handle:
                    handle.write(text)
                path.write_text(text)
        """}, rules=["atomic-write"])
        assert len(by_rule(result, "atomic-write")) == 2

    def test_reads_appends_and_other_zones_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "campaign/c.py": """\
                def ok(path):
                    with open(path) as r, open(path, "a") as a:
                        return r.read(), a
            """,
            # search/ computes; it does not persist shared state.
            "search/s.py": "def save(p, t):\n    open(p, 'w').write(t)\n",
        }, rules=["atomic-write"])
        assert result.findings == []

    def test_utils_atomic_itself_is_exempt(self, tmp_path):
        result = lint_tree(tmp_path, {"utils/atomic.py": """\
            import os

            def write_atomic(path, text):
                with open(str(path) + ".tmp", "w") as handle:
                    handle.write(text)
                    os.fsync(handle.fileno())
                os.replace(str(path) + ".tmp", path)
        """}, rules=["atomic-write", "atomic-rename"])
        assert result.findings == []

    def test_rename_without_fsync_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"service/s.py": """\
            import os

            def swap(a, b):
                os.replace(a, b)
        """}, rules=["atomic-rename"])
        (finding,) = by_rule(result, "atomic-rename")
        assert "os.replace" in finding.message


class TestForkSafety:
    def test_thread_in_init_and_module_scope_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"service/d.py": """\
            import threading

            WATCHER = threading.Thread(target=print)

            class Service:
                def __init__(self):
                    self._t = threading.Thread(target=print)
                    self._lock = threading.Lock()   # locks are fine

                def start(self):
                    self._t2 = threading.Thread(target=print)  # after fork: fine
        """}, rules=["fork-thread-early"])
        lines = sorted(f.line for f in by_rule(result, "fork-thread-early"))
        assert lines == [3, 7]

    def test_mp_primitive_created_late_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"service/d.py": """\
            import multiprocessing

            class Service:
                def __init__(self):
                    self._context = multiprocessing.get_context("fork")
                    self._jobs = self._context.Queue()       # pre-fork: fine

                def resize(self):
                    self._extra = self._context.Queue()      # post-fork: lost
                    self._flag = multiprocessing.Event()     # post-fork: lost
        """}, rules=["fork-mp-late"])
        lines = sorted(f.line for f in by_rule(result, "fork-mp-late"))
        assert lines == [9, 10]

    def test_rules_scoped_to_service_zone(self, tmp_path):
        result = lint_tree(tmp_path, {"eval/e.py": """\
            import threading

            WORKER = threading.Thread(target=print)
        """}, rules=["fork-thread-early", "fork-mp-late"])
        assert result.findings == []


class TestApiSurface:
    def test_stale_entry_and_unlisted_import_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"sub/__init__.py": """\
            from json import dumps, loads

            __all__ = ["dumps", "removed_long_ago"]
        """}, rules=["api-surface"])
        messages = sorted(f.message for f in by_rule(result, "api-surface"))
        assert "'loads'" in messages[0]           # imported, not listed
        assert "'removed_long_ago'" in messages[1]  # listed, not bound

    def test_private_names_and_plain_modules_exempt(self, tmp_path):
        result = lint_tree(tmp_path, {"sub/__init__.py": """\
            import json
            from json import dumps as _dumps

            __all__ = []
        """}, rules=["api-surface"])
        assert result.findings == []

    def test_non_init_files_and_dynamic_all_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sub/mod.py": "from json import dumps\n__all__ = ['gone']\n",
            "dyn/__init__.py": "from json import dumps\n__all__ = "
                               "['du' + 'mps']\n",
        }, rules=["api-surface"])
        assert result.findings == []


class TestSuppressionHygiene:
    def test_unknown_rule_and_missing_reason_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"search/s.py": """\
            import random
            x = random.random()  # repro-lint: allow[no-such-rule] typo
            y = random.random()  # repro-lint: allow[determinism-rng]
        """})
        messages = [f.message for f in by_rule(result, "lint-suppression")]
        assert any("unknown rule 'no-such-rule'" in m for m in messages)
        assert any("no reason" in m for m in messages)

    def test_unused_suppression_flagged_on_full_runs_only(self, tmp_path):
        files = {"search/s.py":
                 "x = 1  # repro-lint: allow[determinism-rng] nothing here\n"}
        full = lint_tree(tmp_path, files)
        assert any("unused suppression" in f.message
                   for f in by_rule(full, "lint-suppression"))
        subset = lint_tree(tmp_path, files, rules=["determinism-clock"])
        assert subset.findings == []


class TestBaseline:
    OFFENDER = "import random\nx = random.choice([1])\n"

    def test_cli_baseline_add_remove_roundtrip(self, tmp_path, capsys):
        pkg = tmp_path / "pkg" / "search"
        pkg.mkdir(parents=True)
        (pkg / "s.py").write_text(self.OFFENDER)
        baseline = tmp_path / "lint-baseline.json"
        base_args = ["lint", "--package-dir", str(tmp_path / "pkg"),
                     "--baseline", str(baseline)]

        assert main(base_args) == 1                       # finding reported
        assert main([*base_args, "--update-baseline"]) == 0
        assert len(load_baseline(baseline)) == 1
        assert main(base_args) == 0                       # grandfathered
        out = capsys.readouterr().out
        assert "baselined: 1" in out

        (pkg / "s.py").write_text("x = 1\n")              # fix the code
        assert main([*base_args, "--update-baseline"]) == 0
        assert load_baseline(baseline) == []              # baseline shrank
        assert main(base_args) == 0

    def test_baseline_matches_without_line_numbers(self, tmp_path):
        pkg = tmp_path / "pkg" / "search"
        pkg.mkdir(parents=True)
        (pkg / "s.py").write_text(self.OFFENDER)
        baseline = tmp_path / "b.json"
        first = run_lint(package_dir=tmp_path / "pkg", use_baseline=False)
        save_baseline(baseline, first.findings)
        # Shift the offending line down; the baseline still absorbs it.
        (pkg / "s.py").write_text("# a comment\n\n" + self.OFFENDER)
        shifted = run_lint(package_dir=tmp_path / "pkg",
                           baseline_path=baseline)
        assert shifted.findings == []
        assert shifted.baselined == 1


class TestRunnerAndReporters:
    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        result = lint_tree(tmp_path, {"search/bad.py": "def broken(:\n"})
        (finding,) = by_rule(result, "lint-parse")
        assert "does not parse" in finding.message

    def test_unknown_rule_selection_raises(self, tmp_path):
        with pytest.raises(KeyError):
            run_lint(package_dir=tmp_path, rules=["no-such-rule"])

    def test_reporters_agree_on_findings(self):
        findings = [Finding("src/x.py", 3, "determinism-rng", "boom")]
        text = render_text(findings, checked_files=1)
        assert "src/x.py:3: determinism-rng boom" in text
        payload = json.loads(render_json(findings, checked_files=1))
        assert payload["findings"] == [findings[0].to_dict()]
        assert Finding.from_dict(payload["findings"][0]) == findings[0]

    def test_every_rule_is_documented(self):
        for rule_id, summary in rule_catalog():
            assert summary, f"{rule_id} has no docstring summary"
            assert len(get_checker(rule_id).explanation().splitlines()) > 1, \
                f"{rule_id} has no --explain body"


class TestCli:
    def test_rules_listing_and_explain(self, capsys):
        assert main(["lint", "--rules"]) == 0
        listed = capsys.readouterr().out
        for rule_id in all_rule_ids():
            assert rule_id in listed
        assert main(["lint", "--explain", "serde-parity"]) == 0
        assert "num_candidates" in capsys.readouterr().out
        assert main(["lint", "--explain", "nope"]) == 2

    def test_update_baseline_rejects_rule_subset(self, tmp_path, capsys):
        args = ["lint", "--package-dir", str(tmp_path), "--baseline",
                str(tmp_path / "b.json"), "--update-baseline",
                "--rules", "serde-parity"]
        assert main(args) == 2


class TestRepositoryIsClean:
    def test_repo_lint_exits_zero_with_shipped_baseline(self, capsys):
        # The shipped baseline is empty: every finding is fixed, not
        # grandfathered.  This is the CI gate, run in-process.
        assert main(["lint"]) == 0
        assert "baselined" not in capsys.readouterr().out

    def test_shipped_baseline_is_empty(self):
        baseline = Path(__file__).parent.parent / "lint-baseline.json"
        assert baseline.exists()
        assert load_baseline(baseline) == []


@pytest.fixture
def repro_copy(tmp_path):
    """A throwaway copy of the real package, for mutation regressions."""
    source = Path(__file__).parent.parent / "src" / "repro"
    target = tmp_path / "repro"
    shutil.copytree(source, target,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return target


class TestMutationRegressions:
    """Re-introduce the historical bugs; the linter must catch each one."""

    def test_deleting_num_candidates_read_is_caught(self, repro_copy):
        serialization = repro_copy / "utils" / "serialization.py"
        lines = [line for line in serialization.read_text().splitlines()
                 if 'payload.get("num_candidates"' not in line]
        serialization.write_text("\n".join(lines) + "\n")
        result = run_lint(package_dir=repro_copy, rules=["serde-parity"],
                          use_baseline=False)
        assert any(f.rule == "serde-parity"
                   and "num_candidates" in f.message
                   and f.path.endswith("utils/serialization.py")
                   for f in result.findings)

    def test_unseeded_numpy_rng_in_search_is_caught(self, repro_copy):
        searcher = repro_copy / "search" / "random_search.py"
        searcher.write_text(searcher.read_text() + textwrap.dedent("""\


            def _jitter():
                import numpy as np
                return np.random.rand()
        """))
        result = run_lint(package_dir=repro_copy, rules=["determinism-rng"],
                          use_baseline=False)
        assert any(f.rule == "determinism-rng"
                   and f.path.endswith("search/random_search.py")
                   for f in result.findings)

    def test_unmutated_copy_is_clean(self, repro_copy):
        result = run_lint(package_dir=repro_copy, use_baseline=False)
        assert result.findings == []
