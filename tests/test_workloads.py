"""Tests for the layer representation and network definitions."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads import (
    DIMENSIONS,
    LayerDims,
    conv2d_layer,
    matmul_layer,
    get_network,
    target_networks,
    training_networks,
    NETWORK_BUILDERS,
)
from repro.workloads.layer import TENSOR_DIMS
from repro.workloads.registry import correlation_layer_pool, sample_layers, unique_layers_across


class TestLayerDims:
    def test_macs(self):
        layer = LayerDims(R=3, S=3, P=4, Q=4, C=2, K=8, N=1)
        assert layer.macs == 3 * 3 * 4 * 4 * 2 * 8

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            LayerDims(R=0)

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            LayerDims(stride_p=0)

    def test_input_window(self):
        layer = LayerDims(R=3, S=3, P=10, Q=10, stride_p=2, stride_q=2)
        assert layer.input_height == 2 * 9 + 3
        assert layer.input_width == 2 * 9 + 3

    def test_tensor_sizes(self):
        layer = LayerDims(R=1, S=1, P=4, Q=4, C=3, K=5, N=2)
        assert layer.tensor_size("W") == 15
        assert layer.tensor_size("O") == 4 * 4 * 5 * 2
        assert layer.tensor_size("I") == 2 * 3 * 4 * 4

    def test_unknown_tensor(self):
        with pytest.raises(KeyError):
            LayerDims().tensor_size("X")

    def test_is_matmul(self):
        assert matmul_layer(8, 16, 32).is_matmul
        assert not conv2d_layer(3, 8, 10, kernel_size=3).is_matmul

    def test_dims_key_ignores_name(self):
        a = conv2d_layer(3, 8, 10, name="a")
        b = conv2d_layer(3, 8, 10, name="b")
        assert a.dims_key() == b.dims_key()

    def test_with_repeats(self):
        layer = conv2d_layer(3, 8, 10).with_repeats(5)
        assert layer.repeats == 5

    @given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 64))
    def test_matmul_macs_match_gemm(self, m, k, n):
        layer = matmul_layer(m, k, n)
        assert layer.macs == m * k * n

    def test_arithmetic_intensity_positive(self):
        assert conv2d_layer(64, 64, 56).arithmetic_intensity > 0

    def test_tensor_dims_cover_all(self):
        union = set().union(*TENSOR_DIMS.values())
        assert union == set(DIMENSIONS)


class TestNetworks:
    @pytest.mark.parametrize("name", sorted(NETWORK_BUILDERS))
    def test_networks_build_and_are_nonempty(self, name):
        network = get_network(name)
        assert network.num_unique_layers > 0
        assert network.total_macs > 0
        assert network.num_layer_instances >= network.num_unique_layers

    def test_unknown_network(self):
        with pytest.raises(KeyError):
            get_network("lenet")

    def test_resnet50_macs_reasonable(self):
        # ResNet-50 is ~3.8-4.1 GMACs for a 224x224 input.
        macs = get_network("resnet50").total_macs
        assert 3.0e9 < macs < 4.5e9

    def test_vgg16_macs_reasonable(self):
        # VGG-16 is ~15.5 GMACs.
        macs = get_network("vgg16").total_macs
        assert 1.4e10 < macs < 1.7e10

    def test_bert_layers_are_matmuls(self):
        assert all(layer.is_matmul for layer in get_network("bert").layers)

    def test_deduplication_keeps_instance_count(self):
        network = get_network("bert")
        # 12 encoder layers contribute 3 QKV projections each.
        qkv = [l for l in network.layers if l.name == "qkv_projection"]
        assert len(qkv) == 1
        assert qkv[0].repeats >= 36

    def test_target_and_training_sets(self):
        targets = target_networks()
        training = training_networks()
        assert {n.name for n in targets} == {"unet", "resnet50", "bert", "retinanet"}
        assert len(training) == 4
        assert not ({n.name for n in targets} & {n.name for n in training})

    def test_describe_mentions_layer_count(self):
        network = get_network("alexnet")
        assert str(network.num_unique_layers) in network.describe()


class TestRegistry:
    def test_unique_layers_deduplicate(self):
        network = get_network("resnet50")
        unique = unique_layers_across([network, network])
        assert len(unique) == network.num_unique_layers
        assert all(layer.repeats == 1 for layer in unique)

    def test_correlation_pool_is_diverse(self):
        pool = correlation_layer_pool()
        assert len(pool) >= 50
        keys = {layer.dims_key() for layer in pool}
        assert len(keys) == len(pool)

    def test_sample_layers(self):
        pool = correlation_layer_pool()
        sampled = sample_layers(pool, 10, seed=0)
        assert len(sampled) == 10

    def test_sample_layers_with_replacement(self):
        pool = correlation_layer_pool()[:3]
        sampled = sample_layers(pool, 10, seed=0)
        assert len(sampled) == 10

    def test_sample_layers_empty_pool(self):
        with pytest.raises(ValueError):
            sample_layers([], 1)
