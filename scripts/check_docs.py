#!/usr/bin/env python
"""Docs CI gate: intra-repo link checking plus the verbatim quickstart snippet.

Checks, as repro-lint-style rules (findings share the format, reporters and
exit conventions of ``repro.cli lint`` — see docs/lint.md):

* ``docs-link`` — every relative markdown link in ``README.md``,
  ``docs/*.md`` and ``benchmarks/README.md`` points at a file that exists in
  the repository.  External ``http(s)://`` and ``mailto:`` links are skipped
  — CI must not depend on the network.
* ``docs-anchor`` — any ``#anchor`` fragment on a markdown target matches
  one of that file's heading slugs (GitHub slug rules).
* ``docs-quickstart`` — the code block between the
  ``--- README quickstart ---`` markers in ``examples/quickstart.py``
  appears *verbatim* inside ``README.md``, so the README example is,
  character for character, the code that the CI smoke actually runs.

All problems are reported in one run rather than stopping at the first.
Exit 0 when clean, 1 with findings.

Run with:  python scripts/check_docs.py [--json]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.findings import Finding  # noqa: E402
from repro.analysis.reporters import render_json, render_text  # noqa: E402

DOC_FILES = (
    ["README.md", "benchmarks/README.md"]
    + sorted(str(p.relative_to(REPO_ROOT)) for p in (REPO_ROOT / "docs").glob("*.md"))
)

QUICKSTART = "examples/quickstart.py"
QUICKSTART_BEGIN = "# --- README quickstart ---"
QUICKSTART_END = "# --- end README quickstart ---"

# [text](target) — excluding images' leading "!" handled identically anyway.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    # Headings inside fenced code blocks are not headings.
    for heading in _HEADING_RE.findall(_FENCE_RE.sub("", markdown)):
        slug = github_slug(heading)
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(doc_path: str, findings: list[Finding]) -> int:
    source = REPO_ROOT / doc_path
    checked = 0
    for lineno, line in enumerate(source.read_text().splitlines(), 1):
        for target in _LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            path_part, _, anchor = target.partition("#")
            if not path_part:  # same-file anchor
                resolved = source
            else:
                resolved = (source.parent / path_part).resolve()
                if not resolved.exists():
                    findings.append(Finding(
                        path=doc_path, line=lineno, rule="docs-link",
                        message=f"broken link -> {target}"))
                    continue
            if anchor and resolved.suffix == ".md":
                if anchor not in heading_slugs(resolved.read_text()):
                    findings.append(Finding(
                        path=doc_path, line=lineno, rule="docs-anchor",
                        message=f"broken anchor -> {target}"))
    return checked


def check_quickstart_snippet(findings: list[Finding]) -> None:
    example = (REPO_ROOT / QUICKSTART).read_text()
    try:
        begin = example.index(QUICKSTART_BEGIN) + len(QUICKSTART_BEGIN)
        end = example.index(QUICKSTART_END)
    except ValueError:
        findings.append(Finding(
            path=QUICKSTART, line=1, rule="docs-quickstart",
            message="quickstart markers missing"))
        return
    snippet = example[begin:end].strip("\n")
    if snippet not in (REPO_ROOT / "README.md").read_text():
        findings.append(Finding(
            path="README.md", line=1, rule="docs-quickstart",
            message=f"quickstart block has drifted from {QUICKSTART} (the "
                    f"code between the {QUICKSTART_BEGIN!r} markers must "
                    "appear in README.md verbatim)"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable findings report")
    args = parser.parse_args(argv)

    findings: list[Finding] = []
    links = 0
    for doc_path in DOC_FILES:
        links += check_links(doc_path, findings)
    check_quickstart_snippet(findings)
    findings.sort()

    counts = {"checked_files": len(DOC_FILES), "checked_links": links}
    if args.json:
        sys.stdout.write(render_json(findings, **counts))
    else:
        print(render_text(findings, **counts))
    return 0 if not findings else 1


if __name__ == "__main__":
    raise SystemExit(main())
