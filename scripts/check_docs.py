#!/usr/bin/env python
"""Docs CI gate: intra-repo link checking plus the verbatim quickstart snippet.

Checks, in order:

1. Every relative markdown link in ``README.md``, ``docs/*.md`` and
   ``benchmarks/README.md`` points at a file that exists in the repository,
   and any ``#anchor`` fragment on a markdown target matches one of that
   file's heading slugs (GitHub slug rules).  External ``http(s)://`` and
   ``mailto:`` links are skipped — CI must not depend on the network.
2. The code block between the ``--- README quickstart ---`` markers in
   ``examples/quickstart.py`` appears *verbatim* inside ``README.md``, so the
   README example is, character for character, the code that the CI smoke
   actually runs.

Exits non-zero listing every failure (the job prints all problems in one run
rather than stopping at the first).

Run with:  python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = (
    ["README.md", "benchmarks/README.md"]
    + sorted(str(p.relative_to(REPO_ROOT)) for p in (REPO_ROOT / "docs").glob("*.md"))
)

QUICKSTART = "examples/quickstart.py"
QUICKSTART_BEGIN = "# --- README quickstart ---"
QUICKSTART_END = "# --- end README quickstart ---"

# [text](target) — excluding images' leading "!" handled identically anyway.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    # Headings inside fenced code blocks are not headings.
    for heading in _HEADING_RE.findall(_FENCE_RE.sub("", markdown)):
        slug = github_slug(heading)
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(doc_path: str, errors: list[str]) -> None:
    source = REPO_ROOT / doc_path
    markdown = source.read_text()
    for target in _LINK_RE.findall(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:  # same-file anchor
            resolved = source
        else:
            resolved = (source.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{doc_path}: broken link -> {target}")
                continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved.read_text()):
                errors.append(f"{doc_path}: broken anchor -> {target}")


def check_quickstart_snippet(errors: list[str]) -> None:
    example = (REPO_ROOT / QUICKSTART).read_text()
    try:
        begin = example.index(QUICKSTART_BEGIN) + len(QUICKSTART_BEGIN)
        end = example.index(QUICKSTART_END)
    except ValueError:
        errors.append(f"{QUICKSTART}: quickstart markers missing")
        return
    snippet = example[begin:end].strip("\n")
    if snippet not in (REPO_ROOT / "README.md").read_text():
        errors.append(
            f"README.md quickstart block has drifted from {QUICKSTART} "
            f"(the code between the '{QUICKSTART_BEGIN}' markers must appear "
            "in README.md verbatim)")


def main() -> int:
    errors: list[str] = []
    for doc_path in DOC_FILES:
        check_links(doc_path, errors)
    check_quickstart_snippet(errors)
    if errors:
        for error in errors:
            print(f"FAIL {error}", file=sys.stderr)
        return 1
    links = sum(len(_LINK_RE.findall((REPO_ROOT / d).read_text())) for d in DOC_FILES)
    print(f"docs OK: {len(DOC_FILES)} files, {links} links, quickstart snippet verbatim")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
