"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed editable in
offline environments whose setuptools/pip predate PEP 660 editable wheels
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of DOSA: Differentiable Model-Based One-Loop Search "
        "for DNN Accelerators (MICRO 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
