"""Co-design a Gemmini-style accelerator for ResNet-50 and compare to baselines.

Reproduces, at reduced scale, the workflow behind Figures 7 and 8 using only
the unified search API: run the ``"dosa"`` strategy on ResNet-50, then give
each expert baseline accelerator (Eyeriss, NVDLA Small/Large, default
Gemmini) well-tuned mappings with the ``"fixed_hw_random"`` strategy, and
print the normalized EDP comparison.

Run with:  python examples/resnet50_codesign.py
"""

import repro
from repro import DosaSettings
from repro.arch import baseline_accelerators
from repro.search import FixedHardwareSettings
from repro.utils.formatting import format_table


def main() -> None:
    network = repro.get_network("resnet50")
    print(f"workload: {network.name} — {network.num_unique_layers} unique layers, "
          f"{network.total_macs / 1e9:.2f} GMACs")

    settings = DosaSettings(num_start_points=2, gd_steps=300, rounding_period=100, seed=0)
    print("running DOSA one-loop search (reduced settings)...")
    dosa = repro.optimize(network, strategy="dosa", settings=settings)
    print(f"  DOSA hardware: {dosa.best_hardware.describe()}")
    print(f"  DOSA EDP:      {dosa.best_edp:.4e}")

    rows = []
    for baseline in baseline_accelerators():
        print(f"evaluating {baseline.name} with a random mapping search...")
        outcome = repro.optimize(network, strategy="fixed_hw_random",
                                 hardware=baseline.config,
                                 settings=FixedHardwareSettings(mappings_per_layer=200,
                                                                seed=0))
        rows.append([baseline.name, baseline.config.describe(),
                     f"{outcome.best_edp:.3e}", f"{outcome.best_edp / dosa.best_edp:.1f}x"])
    rows.append(["Gemmini DOSA", dosa.best_hardware.describe(),
                 f"{dosa.best_edp:.3e}", "1.0x"])

    print()
    print(format_table(
        ["accelerator", "configuration", "EDP (uJ x cycles)", "vs DOSA"], rows))


if __name__ == "__main__":
    main()
