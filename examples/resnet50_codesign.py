"""Co-design a Gemmini-style accelerator for ResNet-50 and compare to baselines.

Reproduces, at reduced scale, the workflow behind Figures 7 and 8: run the
DOSA one-loop search on ResNet-50, then evaluate the expert baseline
accelerators (Eyeriss, NVDLA Small/Large, default Gemmini) with a random
mapping search on the same workload, and print the normalized EDP comparison.

Run with:  python examples/resnet50_codesign.py
"""

from repro import DosaSearcher, DosaSettings
from repro.arch import baseline_accelerators
from repro.search import best_random_mappings_for_hardware
from repro.utils.formatting import format_table
from repro.workloads import get_network


def main() -> None:
    network = get_network("resnet50")
    print(f"workload: {network.name} — {network.num_unique_layers} unique layers, "
          f"{network.total_macs / 1e9:.2f} GMACs")

    settings = DosaSettings(num_start_points=2, gd_steps=300, rounding_period=100, seed=0)
    print("running DOSA one-loop search (reduced settings)...")
    dosa = DosaSearcher(network, settings).search()
    print(f"  DOSA hardware: {dosa.best.hardware.describe()}")
    print(f"  DOSA EDP:      {dosa.best_edp:.4e}")

    rows = []
    for baseline in baseline_accelerators():
        print(f"evaluating {baseline.name} with a random mapping search...")
        _, performance = best_random_mappings_for_hardware(
            network, baseline.config, mappings_per_layer=200, seed=0)
        rows.append([baseline.name, baseline.config.describe(),
                     f"{performance.edp:.3e}", f"{performance.edp / dosa.best_edp:.1f}x"])
    rows.append(["Gemmini DOSA", dosa.best.hardware.describe(),
                 f"{dosa.best_edp:.3e}", "1.0x"])

    print()
    print(format_table(
        ["accelerator", "configuration", "EDP (uJ x cycles)", "vs DOSA"], rows))


if __name__ == "__main__":
    main()
