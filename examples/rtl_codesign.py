"""Real-hardware-style DSE with a learned latency model (Section 6.5 workflow).

1. Generate a latency dataset from random mappings of the training workloads
   on the simulated Gemmini-RTL.
2. Train the DNN difference model and build the combined analytical+DNN
   latency predictor.
3. Run DOSA with PE dimensions fixed to 16x16, using the combined model to
   select the best buffer sizes and mappings for ResNet-50.
4. Report the RTL-evaluated EDP against the hand-tuned default configuration
   (32 KB accumulator / 128 KB scratchpad), as in Figure 12 and Table 7.

Run with:  python examples/rtl_codesign.py
"""

from repro.experiments.fig12_rtl import (
    GEMMINI_RTL_HARDWARE,
    default_design_edp,
    search_with_latency_model,
)
from repro.core.optimizer import DosaSettings
from repro.surrogate import CombinedLatencyModel, RtlSimulator, TrainingSettings, generate_dataset
from repro.surrogate.combined import evaluate_model_accuracy
from repro.surrogate.dataset import train_test_split
from repro.workloads import training_networks


def main() -> None:
    simulator = RtlSimulator()

    print("generating RTL latency dataset from the training workloads...")
    dataset = generate_dataset(training_networks(), GEMMINI_RTL_HARDWARE,
                               samples_per_layer=6, simulator=simulator, seed=0)
    train, test = train_test_split(dataset, seed=0)
    print(f"  {len(train)} training samples, {len(test)} held-out samples")

    print("training the analytical+DNN latency model...")
    combined = CombinedLatencyModel(seed=0)
    combined.train(train, TrainingSettings(epochs=300, seed=0))
    accuracy = evaluate_model_accuracy(combined, test)
    print(f"  Spearman rank correlation on held-out mappings: {accuracy:.3f}")

    print("searching buffer sizes and mappings for ResNet-50 (16x16 PEs fixed)...")
    settings = DosaSettings(num_start_points=2, gd_steps=240, rounding_period=80,
                            fixed_pe_dim=GEMMINI_RTL_HARDWARE.pe_dim, seed=0)
    design = search_with_latency_model("resnet50", combined, settings, simulator)
    default_edp = default_design_edp("resnet50", simulator)

    print()
    print(f"default Gemmini  : accumulator {GEMMINI_RTL_HARDWARE.accumulator_kb} KB, "
          f"scratchpad {GEMMINI_RTL_HARDWARE.scratchpad_kb} KB, EDP {default_edp:.4e}")
    print(f"DOSA (analytical+DNN): accumulator {design.hardware.accumulator_kb} KB, "
          f"scratchpad {design.hardware.scratchpad_kb} KB, EDP {design.edp:.4e}")
    print(f"improvement over the hand-tuned default: {default_edp / design.edp:.2f}x")


if __name__ == "__main__":
    main()
