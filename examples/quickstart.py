"""Quickstart: co-search hardware and mappings for a small DNN with repro.optimize().

Runs the DOSA one-loop gradient search on a three-layer network through the
unified search API — one call, a sample budget, and live progress callbacks —
then prints the derived hardware configuration, the best mapping of each
layer, and a comparison against the random-search baseline run through the
same API with the same budget.

Run with:  python examples/quickstart.py
"""

import repro
from repro.workloads import conv2d_layer, matmul_layer
from repro.workloads.networks import Network


def build_workload() -> Network:
    """A small image-classification-style workload: stem conv, block, classifier."""
    return Network(name="quickstart", layers=[
        conv2d_layer(3, 64, 56, kernel_size=7, stride=2, name="stem"),
        conv2d_layer(64, 64, 56, kernel_size=3, name="block", repeats=4),
        matmul_layer(1, 2048, 1000, name="classifier"),
    ])


def main() -> None:
    network = build_workload()
    print(network.describe())
    print()
    print(f"available strategies: {', '.join(repro.available_strategies())}")
    print()

    # One entry point for every strategy: same budget, same outcome type.
    budget = repro.SearchBudget(max_samples=800)
    outcome = repro.optimize(network, strategy="dosa", budget=budget, seed=0,
                             callbacks=repro.ProgressCallback(prefix="[dosa]"))
    baseline = repro.optimize(network, strategy="random", budget=budget, seed=0)

    print()
    print("Search finished.")
    print(f"  samples used:        {outcome.total_samples} "
          f"(budget: {budget.max_samples})")
    print(f"  wall time:           {outcome.wall_time_seconds:.1f}s")
    print(f"  best EDP found:      {outcome.best_edp:.4e}")
    print(f"  random baseline EDP: {baseline.best_edp:.4e} "
          f"({baseline.best_edp / outcome.best_edp:.2f}x worse)")
    print(f"  derived hardware:    {outcome.best_hardware.describe()}")
    print()
    for mapping in outcome.best_mappings:
        print(mapping.describe())
        print()


if __name__ == "__main__":
    main()
