"""Quickstart: co-search hardware and mappings with one repro.optimize() call.

The block between the two ``README quickstart`` markers below is embedded
*verbatim* in the top-level README.md (the docs CI job,
``scripts/check_docs.py``, fails if the two copies drift apart).  It runs the
DOSA one-loop gradient search on BERT through the unified search API — one
call, a sample budget, live progress callbacks — and prints the best design.

Run with:  PYTHONPATH=src python examples/quickstart.py
"""

# --- README quickstart ---
import repro

outcome = repro.optimize(
    "bert", strategy="dosa", seed=0,
    budget=repro.SearchBudget(max_samples=500),
    callbacks=repro.ProgressCallback(prefix="[dosa]"),
)
print(f"best EDP {outcome.best_edp:.4e} after {outcome.total_samples} samples")
print(f"derived hardware: {outcome.best_hardware.describe()}")
# --- end README quickstart ---


def compare_against_random_baseline() -> None:
    """The same budget through the same API, different strategy (Figure 7)."""
    baseline = repro.optimize("bert", strategy="random",
                              budget=repro.SearchBudget(max_samples=500), seed=0)
    print()
    print(f"available strategies: {', '.join(repro.available_strategies())}")
    print(f"random baseline EDP:  {baseline.best_edp:.4e} "
          f"({baseline.best_edp / outcome.best_edp:.2f}x worse than dosa)")
    print()
    for mapping in outcome.best_mappings:
        print(mapping.describe())
        print()


if __name__ == "__main__":
    compare_against_random_baseline()
