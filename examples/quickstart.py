"""Quickstart: co-search hardware and mappings for a small DNN with DOSA.

Runs the one-loop gradient-descent search on a three-layer network with
reduced settings (a couple of minutes on a laptop), then prints the derived
hardware configuration, the best mapping of each layer, and the improvement
over the search's own starting point.

Run with:  python examples/quickstart.py
"""

from repro import DosaSearcher, DosaSettings, GemminiSpec, evaluate_network_mappings
from repro.workloads import conv2d_layer, matmul_layer
from repro.workloads.networks import Network


def build_workload() -> Network:
    """A small image-classification-style workload: stem conv, block, classifier."""
    return Network(name="quickstart", layers=[
        conv2d_layer(3, 64, 56, kernel_size=7, stride=2, name="stem"),
        conv2d_layer(64, 64, 56, kernel_size=3, name="block", repeats=4),
        matmul_layer(1, 2048, 1000, name="classifier"),
    ])


def main() -> None:
    network = build_workload()
    print(network.describe())
    print()

    settings = DosaSettings(
        num_start_points=2,
        gd_steps=300,
        rounding_period=100,
        seed=0,
    )
    result = DosaSearcher(network, settings).search()

    start = result.start_points[0]
    start_edp = evaluate_network_mappings(start.mappings, GemminiSpec(start.hardware)).edp

    print("Search finished.")
    print(f"  samples used:        {result.trace.total_samples}")
    print(f"  start-point EDP:     {start_edp:.4e}")
    print(f"  best EDP found:      {result.best_edp:.4e}")
    print(f"  improvement:         {start_edp / result.best_edp:.2f}x")
    print(f"  derived hardware:    {result.best.hardware.describe()}")
    print()
    for mapping in result.best.mappings:
        print(mapping.describe())
        print()


if __name__ == "__main__":
    main()
