"""Compare loop-ordering strategies while optimizing BERT (Figure 6 workflow).

Runs the DOSA search on BERT three times from identical start points — without
loop-ordering search, with iterative re-selection, and with gradient-based
softmax weighting — and reports the resulting EDPs plus the loop orderings the
iterative strategy settled on.

Run with:  python examples/bert_loop_ordering.py
"""

from repro import DosaSearcher, DosaSettings, LoopOrderingStrategy
from repro.utils.formatting import format_table
from repro.workloads import get_network


def main() -> None:
    network = get_network("bert")
    print(f"workload: {network.name} — {network.num_unique_layers} unique GEMM layers, "
          f"{network.num_layer_instances} instances")

    rows = []
    selected_orderings = None
    for strategy in (LoopOrderingStrategy.NONE, LoopOrderingStrategy.ITERATE,
                     LoopOrderingStrategy.SOFTMAX):
        settings = DosaSettings(
            num_start_points=2, gd_steps=240, rounding_period=80,
            ordering_strategy=strategy, seed=0,
        )
        result = DosaSearcher(network, settings).search()
        rows.append([strategy.value, f"{result.best_edp:.4e}",
                     result.best.hardware.describe()])
        if strategy is LoopOrderingStrategy.ITERATE:
            selected_orderings = [m.orderings[3].value for m in result.best.mappings]

    print()
    print(format_table(["loop-ordering strategy", "best EDP", "derived hardware"], rows))
    if selected_orderings:
        print()
        print("DRAM-level orderings selected by the iterative strategy, per layer:")
        for layer, ordering in zip(network.layers, selected_orderings):
            print(f"  {layer.name or layer.dims()}: {ordering}")


if __name__ == "__main__":
    main()
